//! The runtime optimizer: decides which optimization to apply to which hot
//! loop and builds the binary rewrite plans.
//!
//! §4/§5.2: COBRA implements two optimizations on the prefetches of loops
//! that contain coherent delinquent loads —
//!
//! * **noprefetch** — "selectively reduces the aggressiveness of prefetching
//!   to remove unnecessary coherent cache misses … turn them into NOP
//!   instructions". Chosen "when the data working set fits in the processor
//!   caches and many coherent misses are caused by aggressive prefetching".
//! * **prefetch.excl** — "selectively chooses prefetch instructions that
//!   cause long latency coherent misses and applies [the] .excl hint".
//!
//! The *adaptive* strategy picks between them per deployment from the
//! system-wide profile: low L3-miss rate (working set fits; misses are
//! coherence) → noprefetch; otherwise keep prefetching but take ownership
//! (`.excl`). Deployments can be reverted when the post-deployment CPI
//! regresses (continuous re-adaptation).

use std::collections::{HashMap, HashSet};

use cobra_isa::insn::{Insn, Op};
use cobra_isa::{encode, CodeAddr, CodeImage, NOP_SLOT_M};
use serde::{Deserialize, Serialize};

use crate::profile::SystemProfile;
use crate::telemetry::{TelemetryEmitter, TelemetryEvent};
use crate::trace::{
    loop_lfetch_sites, loops_with_delinquent_loads, select_loops, HotLoop, TraceConfig,
};

/// Which rewrite a deployment applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptKind {
    NoPrefetch,
    ExclHint,
}

impl OptKind {
    pub const ALL: [OptKind; 2] = [OptKind::NoPrefetch, OptKind::ExclHint];

    pub fn name(self) -> &'static str {
        match self {
            OptKind::NoPrefetch => "noprefetch",
            OptKind::ExclHint => "prefetch.excl",
        }
    }

    /// Inverse of [`OptKind::name`]; `None` for unknown names (e.g. a store
    /// record written by an incompatible build).
    pub fn from_name(name: &str) -> Option<OptKind> {
        OptKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Deployment strategy (the three §5.2 experiment arms plus Adaptive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Always rewrite selected prefetches to `nop.m`.
    NoPrefetch,
    /// Always add the `.excl` hint to selected prefetches.
    ExclHint,
    /// Choose per deployment from the profile.
    Adaptive,
}

/// How rewrites reach the running binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeployMode {
    /// Patch the original text in place (word-granular).
    InPlace,
    /// Clone the loop into the trace cache, rewrite the clone, and redirect
    /// the original loop head (the ADORE-style deployment of §1/§3).
    TraceCache,
}

/// Optimizer thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OptimizerConfig {
    pub strategy: Strategy,
    pub deploy: DeployMode,
    pub trace: TraceConfig,
    /// Minimum DEAR captures at one PC before it counts as delinquent.
    pub min_dear_samples: u64,
    /// Minimum fraction of a site's qualifying misses in the coherent band.
    pub min_coherent_fraction: f64,
    /// Minimum system-wide coherent-bus ratio before optimizing at all.
    pub min_coherent_ratio: f64,
    /// The §5.2 filter: noprefetch targets "instructions that cause
    /// frequent L3 misses **when [the] L2 miss ratio is low**" — a low L2
    /// miss rate means the working set fits L2, so remaining misses are
    /// coherence, not capacity. At or above this L2-misses-per-kilo-
    /// instruction rate the code is streaming and prefetches stay.
    pub l2_kinst_threshold: f64,
    /// §5.2: "noprefetch … needs precise runtime profiles to avoid removing
    /// effective prefetches". A loop whose in-loop DEAR captures are more
    /// than this fraction *memory-band* keeps its prefetches: the fixed
    /// NoPrefetch strategy skips it; Adaptive falls back to `.excl`.
    pub max_memory_fraction: f64,
    /// Minimum merged samples before the first decision.
    pub min_profile_samples: u64,
    /// §4's counter-only path: when the system-wide coherent ratio is at
    /// least this intense, optimize the hottest prefetching loops even if
    /// the DEAR pinpointed no individual load (store-upgrade-dominated
    /// pathologies never latch the DEAR, which samples loads).
    pub fallback_coherent_ratio: f64,
    /// At most this many loops optimized through the counter-only path.
    pub fallback_max_loops: usize,
    /// Deployments per quantum tick: deploying incrementally lets the
    /// CPI-regression feedback assign blame to individual deployments.
    pub max_deploys_per_tick: usize,
    /// Revert a deployment whose post-deployment CPI exceeds the
    /// pre-deployment CPI by this factor (`<= 0` disables reverting).
    /// Trial-and-revert is the framework's answer to pathologies no ex-ante
    /// profile signal can distinguish — e.g. loops whose prefetches hide
    /// *true-sharing* coherent misses look identical, before patching, to
    /// loops whose prefetches *cause* coherent misses. Reverted loops are
    /// blacklisted, so each loop is trialled at most once.
    pub regression_factor: f64,
    /// Quantum ticks to observe after a deployment before judging
    /// regression (should exceed `rolling_ticks` so the rolling window is
    /// fully post-deployment).
    pub regression_ticks: u64,
    /// Ticks of history in the rolling decision profile.
    pub rolling_ticks: usize,
    /// Quantum ticks observed before the first deployment is allowed —
    /// lets the program's cold start age out of the rolling profile so
    /// decisions reflect steady-state behaviour.
    pub warmup_ticks: u64,
    /// Run every plan through the `cobra-verify` static patch-safety
    /// checker before deployment, and every warm seed through it at attach.
    /// A rejected plan blacklists its loop (counted in `verify_rejects`);
    /// the optimizer never panics on a verifier failure. On by default —
    /// disabling is for verifier-overhead experiments only.
    #[serde(default = "default_verify")]
    pub verify: bool,
    /// Shortened learning window used when the optimizer was warm-started
    /// from a store snapshot: *seeded* loops (deployed and validated in a
    /// prior run) may deploy after this many ticks; unseeded loops still
    /// wait out the full `warmup_ticks`, so a warm run converges to the
    /// same final deployment set as a cold one, just earlier.
    #[serde(default = "default_warm_warmup_ticks")]
    pub warm_warmup_ticks: u64,
}

fn default_warm_warmup_ticks() -> u64 {
    6
}

fn default_verify() -> bool {
    true
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            strategy: Strategy::Adaptive,
            deploy: DeployMode::TraceCache,
            trace: TraceConfig::default(),
            min_dear_samples: 3,
            min_coherent_fraction: 0.5,
            min_coherent_ratio: 0.05,
            l2_kinst_threshold: 10.5,
            max_memory_fraction: 0.4,
            min_profile_samples: 32,
            fallback_coherent_ratio: 0.25,
            fallback_max_loops: 4,
            max_deploys_per_tick: 1,
            regression_factor: 1.4,
            // Multi-pass programs alternate CPI regimes tick by tick; the
            // rolling window and the regression horizon must span a whole
            // pass cycle so pre/post comparisons see the same mix.
            regression_ticks: 20,
            rolling_ticks: 16,
            warmup_ticks: 18,
            warm_warmup_ticks: default_warm_warmup_ticks(),
            verify: default_verify(),
        }
    }
}

/// One planned deployment (or revert), shipped from the optimization thread
/// to the simulation thread for application at a safe point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PlanAction {
    Apply(PatchPlan),
    /// Undo a previous deployment by restoring the overwritten words.
    Revert {
        plan_id: u64,
        writes: Vec<(CodeAddr, u64)>,
        reason: String,
    },
}

/// A concrete binary rewrite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PatchPlan {
    pub id: u64,
    pub kind: OptKind,
    pub loop_head: CodeAddr,
    /// Back-edge address of the loop the plan claims to optimize; the
    /// verifier bounds every patch site by `[head - entry window, back_edge]`.
    #[serde(default)]
    pub back_edge: CodeAddr,
    pub description: String,
    /// Words to write into the existing image, `(addr, new_word)`.
    pub writes: Vec<(CodeAddr, u64)>,
    /// Optimized trace to append first (TraceCache mode).
    pub trace: Option<TracePlan>,
}

/// An optimized loop body for the trace cache.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TracePlan {
    /// Where the trace must land (both sides compute `bundle_align(len)` on
    /// identical images; the apply step asserts agreement).
    pub expected_start: CodeAddr,
    pub insns: Vec<Insn>,
}

impl From<OptKind> for cobra_verify::RewriteKind {
    fn from(kind: OptKind) -> Self {
        match kind {
            OptKind::NoPrefetch => cobra_verify::RewriteKind::NoPrefetch,
            OptKind::ExclHint => cobra_verify::RewriteKind::ExclHint,
        }
    }
}

/// Check `plan` against `image` with the full `cobra-verify` rule set.
/// `entry_window_slots` is the hoisted-burst scan window of the trace
/// selector (`TraceConfig::entry_window_slots`): patch sites may precede the
/// loop head by at most that much. Exposed so the harness and benches can
/// run the exact deploy-gate check on captured plans.
pub fn verify_plan(
    image: &CodeImage,
    plan: &PatchPlan,
    entry_window_slots: u32,
) -> Result<(), cobra_verify::VerifyError> {
    let trace = plan.trace.as_ref().map(|t| cobra_verify::TraceCheck {
        expected_start: t.expected_start,
        insns: &t.insns,
    });
    cobra_verify::check_plan(
        image,
        &cobra_verify::PlanCheck {
            kind: plan.kind.into(),
            loop_head: plan.loop_head,
            back_edge: plan.back_edge,
            region_start: plan.loop_head.saturating_sub(entry_window_slots),
            writes: &plan.writes,
            trace,
        },
    )
}

#[derive(Debug)]
struct Deployment {
    plan_id: u64,
    loop_head: CodeAddr,
    kind: OptKind,
    /// `(addr, old_word)` for revert.
    undo: Vec<(CodeAddr, u64)>,
    baseline_cpi: f64,
    /// CPI of the most recent completed trial window (0 until one closes).
    last_post_cpi: f64,
    post_ticks: u64,
    reverted: bool,
}

/// Prior-run knowledge used to warm-start an optimizer (decoded from a
/// `cobra-store` snapshot by the framework).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarmSeed {
    /// Loops deployed (and not reverted) in a prior run, with the rewrite
    /// that stuck.
    pub decisions: Vec<(CodeAddr, OptKind)>,
    /// Loops whose deployments regressed in a prior run: skipped outright.
    pub blacklist: Vec<CodeAddr>,
}

/// One loop's final decision, exported at detach for persistence.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionExport {
    pub loop_head: CodeAddr,
    pub kind: OptKind,
    pub reverted: bool,
    pub baseline_cpi: f64,
    pub post_cpi: f64,
}

/// The optimization-thread state: decisions, plan construction, and its own
/// synchronized copy of the program image.
#[derive(Debug)]
pub struct Optimizer {
    cfg: OptimizerConfig,
    image: CodeImage,
    optimized_heads: HashSet<CodeAddr>,
    /// Loops whose deployments regressed: never touched again (phase
    /// changes clear `optimized_heads` but not this).
    blacklisted_heads: HashSet<CodeAddr>,
    deployments: Vec<Deployment>,
    next_plan_id: u64,
    ticks_seen: u64,
    /// Seeded decisions from a warm start, pending live validation.
    seeded: HashMap<CodeAddr, OptKind>,
    /// Whether [`Optimizer::warm_start`] ran (enables the shortened
    /// learning window even after every seed is consumed).
    warm: bool,
    warm_hits: u64,
    warm_mismatches: u64,
    undecodable_loops: u64,
    verify_rejects: u64,
    telemetry: Option<TelemetryEmitter>,
    /// Quantum tick / machine cycle of the tick being considered (set by
    /// [`Optimizer::begin_tick`]), used to stamp telemetry events.
    cur_tick: u64,
    cur_cycle: u64,
}

impl Optimizer {
    /// `image` is the program text at attach time (the optimizer keeps it in
    /// sync with the machine's copy by applying its own plans).
    pub fn new(cfg: OptimizerConfig, image: CodeImage) -> Self {
        Optimizer {
            cfg,
            image,
            optimized_heads: HashSet::new(),
            blacklisted_heads: HashSet::new(),
            deployments: Vec::new(),
            next_plan_id: 0,
            ticks_seen: 0,
            seeded: HashMap::new(),
            warm: false,
            warm_hits: 0,
            warm_mismatches: 0,
            undecodable_loops: 0,
            verify_rejects: 0,
            telemetry: None,
            cur_tick: 0,
            cur_cycle: 0,
        }
    }

    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// Publish decision events (classifications, CPI trials, blacklists)
    /// through `emitter`.
    pub fn set_telemetry(&mut self, emitter: TelemetryEmitter) {
        self.telemetry = Some(emitter);
    }

    /// Stamp subsequent decisions with the tick/cycle they belong to.
    pub fn begin_tick(&mut self, tick: u64, cycle: u64) {
        self.cur_tick = tick;
        self.cur_cycle = cycle;
    }

    /// Seed the optimizer with prior-run knowledge (call before the first
    /// tick). Blacklisted loops are skipped outright; seeded decisions
    /// shorten the learning window to `warm_warmup_ticks`, but each one is
    /// still **validated against the live profile** before deploying — a
    /// mismatch drops the seed and the loop falls back to the normal
    /// post-`warmup_ticks` decision path.
    pub fn warm_start(&mut self, seed: WarmSeed) {
        self.warm = true;
        for (head, kind) in seed.decisions {
            // Re-verify each seed against the *live* image: the store is
            // keyed by image hash, but a corrupted snapshot record (or a
            // hash collision) must not smuggle a stale loop head past the
            // deploy gate. A rejected seed is dropped, not fatal — the loop
            // simply falls back to the cold decision path.
            if self.cfg.verify {
                if let Err(err) = cobra_verify::check_seed(&self.image, head) {
                    self.verify_rejects += 1;
                    self.emit(TelemetryEvent::VerifyReject {
                        tick: self.cur_tick,
                        cycle: self.cur_cycle,
                        loop_head: head,
                        reason: format!("warm seed: {err}"),
                    });
                    continue;
                }
            }
            self.seeded.insert(head, kind);
        }
        for head in seed.blacklist {
            // A stale blacklist entry is conservative (skips a loop), so it
            // needs no verification.
            self.blacklisted_heads.insert(head);
        }
    }

    /// Whether [`Optimizer::warm_start`] ran.
    pub fn is_warm(&self) -> bool {
        self.warm
    }

    /// Seeded deployments whose live classification agreed.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits
    }

    /// Seeded decisions dropped because the live profile disagreed.
    pub fn warm_mismatches(&self) -> u64 {
        self.warm_mismatches
    }

    /// Candidate loops skipped because a word in them failed to decode.
    pub fn undecodable_loops(&self) -> u64 {
        self.undecodable_loops
    }

    /// Plans (or warm seeds) rejected by the `cobra-verify` safety checker.
    pub fn verify_rejects(&self) -> u64 {
        self.verify_rejects
    }

    /// Final per-loop decisions and the blacklist, for persistence. Both
    /// lists are sorted by loop head so snapshots serialize
    /// deterministically.
    pub fn export_state(&self) -> (Vec<DecisionExport>, Vec<CodeAddr>) {
        let mut decisions: Vec<DecisionExport> = self
            .deployments
            .iter()
            .map(|d| DecisionExport {
                loop_head: d.loop_head,
                kind: d.kind,
                reverted: d.reverted,
                baseline_cpi: d.baseline_cpi,
                post_cpi: d.last_post_cpi,
            })
            .collect();
        decisions.sort_by_key(|d| d.loop_head);
        let mut blacklist: Vec<CodeAddr> = self.blacklisted_heads.iter().copied().collect();
        blacklist.sort_unstable();
        (decisions, blacklist)
    }

    fn emit(&self, event: TelemetryEvent) {
        if let Some(t) = &self.telemetry {
            t.emit(event);
        }
    }

    /// Evaluate the current profile; returns any plans to deploy or revert.
    /// The caller should `reset_window` the profile after a deployment so
    /// post-deployment behaviour is measured fresh.
    pub fn consider(&mut self, profile: &SystemProfile) -> Vec<PlanAction> {
        let mut actions = Vec::new();
        self.ticks_seen += 1;
        self.track_regressions(profile, &mut actions);

        // A warm-started run may act after the shortened learning window —
        // but only on seeded loops (see below); everything else still waits
        // out the full cold warmup.
        let warmup_gate = if self.warm {
            self.cfg.warm_warmup_ticks.min(self.cfg.warmup_ticks)
        } else {
            self.cfg.warmup_ticks
        };
        if self.ticks_seen <= warmup_gate {
            return actions;
        }
        let in_warm_window = self.warm && self.ticks_seen <= self.cfg.warmup_ticks;
        if profile.samples < self.cfg.min_profile_samples {
            return actions;
        }
        if profile.window.coherent_ratio() < self.cfg.min_coherent_ratio {
            return actions;
        }
        let hot_pcs: Vec<CodeAddr> = profile
            .coherent_delinquent(self.cfg.min_dear_samples, self.cfg.min_coherent_fraction)
            .into_iter()
            .map(|(pc, _)| pc)
            .collect();
        let loops = select_loops(profile, &self.cfg.trace);
        // Candidates: loops pinpointed by DEAR captures, plus — when the
        // system-wide coherent ratio is intense — the hottest other loops
        // (the counter-only path of §4: the DEAR latches one event per
        // sample, so store-upgrade-dominated loops rarely surface there).
        let mut candidates = loops_with_delinquent_loads(&loops, &hot_pcs);
        if profile.window.coherent_ratio() >= self.cfg.fallback_coherent_ratio {
            let mut extra = 0usize;
            for lp in &loops {
                if extra >= self.cfg.fallback_max_loops {
                    break;
                }
                if candidates.iter().any(|c| c.head == lp.head)
                    || self.optimized_heads.contains(&lp.head)
                    || self.blacklisted_heads.contains(&lp.head)
                {
                    continue;
                }
                candidates.push(lp.clone());
                extra += 1;
            }
        }
        // Seeded loops are candidates on prior-run evidence alone: this
        // early in a warm run the DEAR may not have re-pinpointed them yet.
        if !self.seeded.is_empty() {
            for lp in &loops {
                if self.seeded.contains_key(&lp.head)
                    && !candidates.iter().any(|c| c.head == lp.head)
                {
                    candidates.push(lp.clone());
                }
            }
        }
        if candidates.is_empty() {
            return actions;
        }
        let mut deployed_this_tick = 0usize;
        for lp in candidates {
            if deployed_this_tick >= self.cfg.max_deploys_per_tick {
                break;
            }
            if self.optimized_heads.contains(&lp.head) || self.blacklisted_heads.contains(&lp.head)
            {
                continue;
            }
            // During the shortened learning window only loops with a seeded
            // (previously validated) decision may deploy; unseeded loops
            // wait out the full cold warmup so a warm run converges to the
            // same deployment set as a cold one.
            if in_warm_window && !self.seeded.contains_key(&lp.head) {
                continue;
            }
            // Never optimize our own optimized traces (their back edges are
            // hot in the BTB too), and never trust loop candidates whose
            // body extends into the trace-cache region (mispaired branches).
            if self.image.is_trace_addr(lp.head) || self.image.is_trace_addr(lp.back_edge) {
                continue;
            }
            let sites = loop_lfetch_sites(&self.image, &lp, &self.cfg.trace);
            if sites.is_empty() {
                continue;
            }
            let prefetch_effective = self.classify(&lp, profile);
            let kind = self.choose_kind(prefetch_effective);
            self.emit(TelemetryEvent::LoopClassified {
                tick: self.cur_tick,
                cycle: self.cur_cycle,
                loop_head: lp.head,
                back_edge: lp.back_edge,
                prefetch_effective,
                decision: kind,
            });
            let seeded_kind = self.seeded.get(&lp.head).copied();
            let Some(kind) = kind else {
                if seeded_kind.is_some() {
                    // The live profile declines what the prior run deployed:
                    // drop the seed, let the normal path re-decide later.
                    self.seeded.remove(&lp.head);
                    self.warm_mismatches += 1;
                }
                continue;
            };
            if let Some(seed) = seeded_kind {
                self.seeded.remove(&lp.head);
                if seed == kind {
                    self.warm_hits += 1;
                } else {
                    self.warm_mismatches += 1;
                    if in_warm_window {
                        // Mismatched seeds never deploy early; the loop
                        // falls back to the normal post-warmup path.
                        continue;
                    }
                }
            }
            let Some(plan) = self.build_plan(&lp, &sites, kind, profile) else {
                // A word in the loop no longer decodes (e.g. foreign bytes
                // in the text): skip and never retry, don't abort the
                // optimizer thread.
                self.undecodable_loops += 1;
                self.blacklisted_heads.insert(lp.head);
                self.emit(TelemetryEvent::UndecodableLoop {
                    tick: self.cur_tick,
                    cycle: self.cur_cycle,
                    loop_head: lp.head,
                });
                continue;
            };
            // The deploy gate: every plan is machine-checked against the
            // live image before it lands. A rejection means the optimizer
            // produced (or was fed) something unsafe — blacklist the loop
            // and keep running rather than deploy a miscompile.
            if self.cfg.verify {
                if let Err(err) = verify_plan(&self.image, &plan, self.cfg.trace.entry_window_slots)
                {
                    self.verify_rejects += 1;
                    self.blacklisted_heads.insert(lp.head);
                    self.emit(TelemetryEvent::VerifyReject {
                        tick: self.cur_tick,
                        cycle: self.cur_cycle,
                        loop_head: lp.head,
                        reason: err.to_string(),
                    });
                    continue;
                }
            }
            self.apply_to_own_image(&plan);
            self.optimized_heads.insert(lp.head);
            self.deployments.push(Deployment {
                plan_id: plan.id,
                loop_head: lp.head,
                kind,
                undo: plan
                    .writes
                    .iter()
                    .map(|&(addr, _)| (addr, self.undo_word(addr, &plan)))
                    .collect(),
                baseline_cpi: profile.window.cpi(),
                last_post_cpi: 0.0,
                post_ticks: 0,
                reverted: false,
            });
            actions.push(PlanAction::Apply(plan));
            deployed_this_tick += 1;
        }
        actions
    }

    /// Per-loop memory-band fraction of the DEAR captures inside the loop
    /// (`None` when the loop has no DEAR captures).
    fn loop_memory_fraction(&self, lp: &HotLoop, profile: &SystemProfile) -> Option<f64> {
        let mut coherent = 0u64;
        let mut memory = 0u64;
        for (&pc, stats) in &profile.delinquent {
            if lp.contains(pc) {
                coherent += stats.coherent;
                memory += stats.memory;
            }
        }
        let total = coherent + memory;
        if total == 0 {
            None
        } else {
            Some(memory as f64 / total as f64)
        }
    }

    /// Classify one loop's prefetches. They are *effective* (worth keeping)
    /// when the code streams through L2 (high L2 miss rate — the inverse of
    /// §5.2's "L2 miss ratio is low" condition) or when the loop's DEAR
    /// captures sit in the memory band.
    fn classify(&self, lp: &HotLoop, profile: &SystemProfile) -> bool {
        let mem_frac = self.loop_memory_fraction(lp, profile);
        profile.window.capacity_l2_per_kinst() >= self.cfg.l2_kinst_threshold
            || mem_frac.is_some_and(|f| f > self.cfg.max_memory_fraction)
    }

    /// Decide the rewrite from a loop's classification — or decline
    /// (`None`) when removing the prefetches would hurt.
    fn choose_kind(&self, prefetch_effective: bool) -> Option<OptKind> {
        match self.cfg.strategy {
            Strategy::NoPrefetch => {
                if prefetch_effective {
                    // "avoid removing effective prefetches" (§5.2).
                    None
                } else {
                    Some(OptKind::NoPrefetch)
                }
            }
            Strategy::ExclHint => Some(OptKind::ExclHint),
            Strategy::Adaptive => {
                if prefetch_effective {
                    Some(OptKind::ExclHint)
                } else {
                    Some(OptKind::NoPrefetch)
                }
            }
        }
    }

    /// Original word at `addr` *before* `plan` was applied (plans are built
    /// against the pre-plan image, so look in the patch log first).
    fn undo_word(&self, addr: CodeAddr, _plan: &PatchPlan) -> u64 {
        // apply_to_own_image records patches; the log's old_word for the
        // most recent patch at `addr` is the pre-plan word.
        self.image
            .patch_log()
            .iter()
            .rev()
            .find(|r| r.addr == addr)
            .map(|r| r.old_word)
            .unwrap_or_else(|| self.image.word(addr))
    }

    fn rewrite_lfetch(&self, insn: &Insn, kind: OptKind) -> Insn {
        match (kind, insn.op) {
            (OptKind::NoPrefetch, Op::Lfetch { .. }) => NOP_SLOT_M,
            (
                OptKind::ExclHint,
                Op::Lfetch {
                    base,
                    post_inc,
                    hint,
                    ..
                },
            ) => Insn::pred(
                insn.qp,
                Op::Lfetch {
                    base,
                    post_inc,
                    hint,
                    excl: true,
                },
            ),
            _ => *insn,
        }
    }

    /// Build the rewrite plan for one loop, or `None` when any word the
    /// plan must read fails to decode — the caller skips (and counts) the
    /// loop instead of panicking the optimizer thread.
    fn build_plan(
        &mut self,
        lp: &HotLoop,
        sites: &[CodeAddr],
        kind: OptKind,
        profile: &SystemProfile,
    ) -> Option<PatchPlan> {
        let id = self.next_plan_id;
        self.next_plan_id += 1;
        let description = format!(
            "{} on loop [{},{}] ({} lfetch sites; coherent ratio {:.3}, L3/kinst {:.2})",
            kind.name(),
            lp.head,
            lp.back_edge,
            sites.len(),
            profile.window.coherent_ratio(),
            profile.window.l3_per_kinst(),
        );
        match self.cfg.deploy {
            DeployMode::InPlace => {
                let mut writes = Vec::with_capacity(sites.len());
                for &addr in sites {
                    let insn = self.image.insn(addr).ok()?;
                    writes.push((addr, encode(&self.rewrite_lfetch(&insn, kind))));
                }
                Some(PatchPlan {
                    id,
                    kind,
                    loop_head: lp.head,
                    back_edge: lp.back_edge,
                    description,
                    writes,
                    trace: None,
                })
            }
            DeployMode::TraceCache => {
                // Clone the body, rewriting in-body prefetches and
                // retargeting the back edge to the trace-local head.
                let expected_start = cobra_isa::bundle_align(self.image.len());
                let mut insns = Vec::with_capacity(lp.len() as usize + 1);
                for addr in lp.head..=lp.back_edge {
                    let mut insn = self.image.insn(addr).ok()?;
                    insn = self.rewrite_lfetch(&insn, kind);
                    if insn.op.branch_target() == Some(lp.head) {
                        insn.op = insn.op.with_branch_target(expected_start)?;
                    }
                    insns.push(insn);
                }
                // Exit: fall through the cloned back edge, branch back to
                // the instruction after the original back edge.
                insns.push(Insn::new(Op::BrCond {
                    target: lp.back_edge + 1,
                }));
                // Entry-window sites (the hoisted burst) are outside the
                // body; rewrite those in place. The original head becomes a
                // redirect into the trace.
                let mut writes: Vec<(CodeAddr, u64)> = Vec::with_capacity(sites.len() + 1);
                for &addr in sites.iter().filter(|&&a| a < lp.head) {
                    let insn = self.image.insn(addr).ok()?;
                    writes.push((addr, encode(&self.rewrite_lfetch(&insn, kind))));
                }
                writes.push((
                    lp.head,
                    encode(&Insn::new(Op::BrCond {
                        target: expected_start,
                    })),
                ));
                Some(PatchPlan {
                    id,
                    kind,
                    loop_head: lp.head,
                    back_edge: lp.back_edge,
                    description,
                    writes,
                    trace: Some(TracePlan {
                        expected_start,
                        insns,
                    }),
                })
            }
        }
    }

    /// Apply a plan to the optimizer's own image copy (keeps both sides'
    /// trace-cache layout identical).
    fn apply_to_own_image(&mut self, plan: &PatchPlan) {
        if let Some(trace) = &plan.trace {
            let start = self.image.append_trace(&trace.insns);
            assert_eq!(start, trace.expected_start, "trace layout divergence");
        }
        for &(addr, word) in &plan.writes {
            self.image.patch_word(addr, word).expect("own-image patch");
        }
    }

    /// Accumulate post-deployment CPI and emit reverts on regression.
    fn track_regressions(&mut self, profile: &SystemProfile, actions: &mut Vec<PlanAction>) {
        if self.cfg.regression_factor <= 0.0 || profile.samples == 0 {
            return;
        }
        let cfg = self.cfg;
        // (plan_id, loop_head, saved words to restore, reason)
        type Revert = (u64, CodeAddr, Vec<(CodeAddr, u64)>, String);
        let mut reverts: Vec<Revert> = Vec::new();
        let mut trials: Vec<TelemetryEvent> = Vec::new();
        for d in self.deployments.iter_mut().filter(|d| !d.reverted) {
            d.post_ticks += 1;
            // The deployment-time window may have had too few intra-thread
            // sample pairs for a CPI (tiny regions); arm the baseline from
            // the first usable post-deployment window instead — regressions
            // are then judged against optimized steady state, which is the
            // behaviour re-adaptation should preserve.
            if d.baseline_cpi <= 0.0 {
                if profile.window.instructions > 0 {
                    d.baseline_cpi = profile.window.cpi();
                }
                continue;
            }
            if d.post_ticks >= cfg.regression_ticks && profile.window.instructions > 0 {
                // The rolling window is fully post-deployment by now.
                let post_cpi = profile.window.cpi();
                d.last_post_cpi = post_cpi;
                if std::env::var("COBRA_DEBUG_REGRESSION").is_ok() {
                    eprintln!(
                        "[regress?] plan {} post_ticks {} cpi {:.3} baseline {:.3}",
                        d.plan_id, d.post_ticks, post_cpi, d.baseline_cpi
                    );
                }
                let regressed =
                    d.baseline_cpi > 0.0 && post_cpi > d.baseline_cpi * cfg.regression_factor;
                trials.push(TelemetryEvent::CpiTrial {
                    tick: self.cur_tick,
                    cycle: self.cur_cycle,
                    plan_id: d.plan_id,
                    post_ticks: d.post_ticks,
                    baseline_cpi: d.baseline_cpi,
                    post_cpi,
                    regressed,
                });
                if regressed {
                    d.reverted = true;
                    reverts.push((
                        d.plan_id,
                        d.loop_head,
                        d.undo.clone(),
                        format!(
                            "CPI regressed {:.3} -> {:.3}; reverting",
                            d.baseline_cpi, post_cpi
                        ),
                    ));
                }
            }
        }
        for trial in trials {
            self.emit(trial);
        }
        for (plan_id, loop_head, writes, reason) in reverts {
            // Restore our own copy, and never touch this loop again.
            for &(addr, old) in &writes {
                self.image.patch_word(addr, old).expect("own-image revert");
            }
            self.blacklisted_heads.insert(loop_head);
            self.emit(TelemetryEvent::Blacklist {
                tick: self.cur_tick,
                cycle: self.cur_cycle,
                loop_head,
            });
            actions.push(PlanAction::Revert {
                plan_id,
                writes,
                reason,
            });
        }
    }

    /// Notification of a detected phase change. Deployed and blacklisted
    /// loops stay as they are (re-deploying an already-patched loop would
    /// stack rewrites); the value of the phase signal is that the *caller*
    /// discards stale profile history, so loops that only now became hot
    /// get considered against fresh data.
    pub fn on_phase_change(&mut self) {}

    /// Number of applied (non-reverted) deployments.
    pub fn active_deployments(&self) -> usize {
        self.deployments.iter().filter(|d| !d.reverted).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CounterWindow, LatencyBands, ProfileDelta, SystemProfile};
    use cobra_isa::{Assembler, LfetchHint};

    /// A loop image shaped like minicc output: burst, head, body with
    /// lfetch, back edge.
    fn loop_image() -> (CodeImage, CodeAddr, CodeAddr, CodeAddr) {
        let mut a = Assembler::new();
        a.lfetch_nt1(0, 10, 128); // hoisted burst
        a.lfetch_nt1(0, 10, 128);
        let top = a.new_label();
        a.bind(top);
        let head = a.here();
        let load_pc = a.ldfd(16, 32, 2, 8);
        a.lfetch_nt1(16, 27, 8);
        a.stfd(23, 46, 4, 8);
        let back = a.br_ctop(top);
        a.hlt();
        (a.finish(), head, back, load_pc)
    }

    fn hot_profile_lat(
        load_pc: CodeAddr,
        head: CodeAddr,
        back: CodeAddr,
        miss_kinst: f64,
        dear_latency: u64,
    ) -> SystemProfile {
        let mut sp = SystemProfile::new(LatencyBands { coherent_min: 165 });
        let mut delta = ProfileDelta {
            samples: 100,
            window: CounterWindow {
                instructions: 100_000,
                cycles: 150_000,
                bus_memory: 1000,
                bus_coherent: 300,
                l2_miss: (miss_kinst * 100.0) as u64,
                l3_miss: (miss_kinst * 100.0) as u64,
            },
            ..ProfileDelta::default()
        };
        for _ in 0..20 {
            delta.dear_events.push((load_pc, 0x1000, dear_latency));
            delta.branch_pairs.push((back, head));
        }
        sp.absorb(&delta);
        sp
    }

    fn hot_profile(
        load_pc: CodeAddr,
        head: CodeAddr,
        back: CodeAddr,
        l3_kinst: f64,
    ) -> SystemProfile {
        hot_profile_lat(load_pc, head, back, l3_kinst, 200)
    }

    #[test]
    fn adaptive_picks_noprefetch_when_working_set_fits() {
        let (image, head, back, load_pc) = loop_image();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                deploy: DeployMode::InPlace,
                warmup_ticks: 0,
                ..Default::default()
            },
            image.clone(),
        );
        let profile = hot_profile(load_pc, head, back, 1.0);
        let actions = opt.consider(&profile);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            PlanAction::Apply(plan) => {
                assert_eq!(plan.kind, OptKind::NoPrefetch);
                assert_eq!(plan.loop_head, head);
                // 2 burst + 1 in-loop site.
                assert_eq!(plan.writes.len(), 3);
                for &(_, word) in &plan.writes {
                    assert_eq!(
                        cobra_isa::decode(word).unwrap().op,
                        Op::Nop {
                            unit: cobra_isa::Unit::M
                        }
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        // Re-considering the same profile does not duplicate the plan.
        assert!(opt.consider(&profile).is_empty());
        assert_eq!(opt.active_deployments(), 1);
    }

    #[test]
    fn adaptive_picks_excl_when_misses_stream() {
        // Memory-band DEAR captures (140 < coherent_min): the loop's loads
        // benefit from prefetching, so Adaptive keeps the prefetches and
        // takes ownership instead.
        let (image, head, back, load_pc) = loop_image();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                deploy: DeployMode::InPlace,
                warmup_ticks: 0,
                ..Default::default()
            },
            image,
        );
        let profile = hot_profile_lat(load_pc, head, back, 20.0, 140);
        let actions = opt.consider(&profile);
        match &actions[0] {
            PlanAction::Apply(plan) => {
                assert_eq!(plan.kind, OptKind::ExclHint);
                for &(_, word) in &plan.writes {
                    match cobra_isa::decode(word).unwrap().op {
                        Op::Lfetch { excl, hint, .. } => {
                            assert!(excl);
                            assert_eq!(hint, LfetchHint::Nt1);
                        }
                        other => panic!("{other:?}"),
                    }
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_cache_plan_redirects_head_and_retargets_back_edge() {
        let (image, head, back, load_pc) = loop_image();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                deploy: DeployMode::TraceCache,
                warmup_ticks: 0,
                ..Default::default()
            },
            image.clone(),
        );
        let profile = hot_profile(load_pc, head, back, 1.0);
        let actions = opt.consider(&profile);
        let plan = match &actions[0] {
            PlanAction::Apply(p) => p,
            other => panic!("{other:?}"),
        };
        let trace = plan.trace.as_ref().expect("trace plan");
        assert_eq!(trace.expected_start, cobra_isa::bundle_align(image.len()));
        // The trace's back edge targets the trace head; the exit branch
        // returns after the original back edge.
        let cloned_back = &trace.insns[(back - head) as usize];
        assert_eq!(cloned_back.op.branch_target(), Some(trace.expected_start));
        let exit = trace.insns.last().unwrap();
        assert_eq!(exit.op.branch_target(), Some(back + 1));
        // The in-body lfetch is rewritten in the trace, not in place.
        assert!(trace.insns.iter().all(|i| !i.is_lfetch()));
        // Head redirect present; burst rewritten in place.
        assert!(plan.writes.iter().any(|&(a, w)| a == head
            && cobra_isa::decode(w).unwrap().op.branch_target() == Some(trace.expected_start)));
        let burst_writes = plan.writes.iter().filter(|&&(a, _)| a < head).count();
        assert_eq!(burst_writes, 2);
    }

    #[test]
    fn gates_block_quiet_profiles() {
        let (image, head, back, load_pc) = loop_image();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                deploy: DeployMode::InPlace,
                warmup_ticks: 0,
                ..Default::default()
            },
            image,
        );
        // Too few samples.
        let mut p = hot_profile(load_pc, head, back, 1.0);
        p.samples = 4;
        assert!(opt.consider(&p).is_empty());
        // Low coherent ratio.
        let mut p = hot_profile(load_pc, head, back, 1.0);
        p.window.bus_coherent = 1;
        assert!(opt.consider(&p).is_empty());
    }

    #[test]
    fn regression_triggers_revert_with_undo_words() {
        let (image, head, back, load_pc) = loop_image();
        let cfg = OptimizerConfig {
            deploy: DeployMode::InPlace,
            warmup_ticks: 0,
            regression_ticks: 3,
            regression_factor: 1.05,
            ..Default::default()
        };
        let mut opt = Optimizer::new(cfg, image.clone());
        let profile = hot_profile(load_pc, head, back, 1.0);
        let actions = opt.consider(&profile);
        let plan_id = match &actions[0] {
            PlanAction::Apply(p) => p.id,
            other => panic!("{other:?}"),
        };
        // Post-deployment profile with much worse CPI.
        let mut worse = SystemProfile::new(LatencyBands { coherent_min: 165 });
        worse.absorb(&ProfileDelta {
            cpu: 0,
            window: CounterWindow {
                instructions: 100_000,
                cycles: 400_000, // CPI 4.0 vs baseline 1.5
                ..CounterWindow::default()
            },
            dear_events: vec![],
            branch_pairs: vec![],
            samples: 50,
        });
        // One consider call per tick; the revert fires once regression_ticks
        // post-deployment ticks have been observed.
        let mut actions = opt.consider(&worse);
        for _ in 0..4 {
            if actions
                .iter()
                .any(|a| matches!(a, PlanAction::Revert { .. }))
            {
                break;
            }
            actions = opt.consider(&worse);
        }
        let (id, writes) = match actions.iter().find_map(|a| match a {
            PlanAction::Revert {
                plan_id, writes, ..
            } => Some((*plan_id, writes.clone())),
            _ => None,
        }) {
            Some(x) => x,
            None => panic!("expected a revert, got {actions:?}"),
        };
        assert_eq!(id, plan_id);
        // Undo words restore the original lfetches.
        for (addr, old) in writes {
            assert_eq!(image.word(addr), old, "undo word mismatch at {addr}");
        }
        assert_eq!(opt.active_deployments(), 0);
    }

    /// A loop whose body contains a word that no longer decodes (stale
    /// profile, self-modifying guest, bit rot) must be skipped and
    /// blacklisted — not abort the optimization thread.
    #[test]
    fn undecodable_body_word_skips_loop_and_blacklists() {
        let (image, head, back, load_pc) = loop_image();
        // Corrupt the store between the loads: not an lfetch (so site
        // discovery still finds the loop) but decoded when cloning the body.
        let mut words = image.words().to_vec();
        words[(head + 2) as usize] = u64::MAX;
        assert!(cobra_isa::decode(u64::MAX).is_err());
        let corrupt = CodeImage::from_words(words, Default::default());
        let mut opt = Optimizer::new(
            OptimizerConfig {
                deploy: DeployMode::TraceCache,
                warmup_ticks: 0,
                ..Default::default()
            },
            corrupt,
        );
        let profile = hot_profile(load_pc, head, back, 1.0);
        let actions = opt.consider(&profile);
        assert!(
            !actions.iter().any(|a| matches!(a, PlanAction::Apply(_))),
            "no plan may be built from an undecodable body: {actions:?}"
        );
        assert_eq!(opt.undecodable_loops(), 1);
        // Blacklisted: re-considering does not retry (and does not recount).
        assert!(opt.consider(&profile).is_empty());
        assert_eq!(opt.undecodable_loops(), 1);
        assert_eq!(opt.active_deployments(), 0);
    }

    /// A warm-started optimizer deploys a seeded, profile-confirmed
    /// decision after the shortened learning window — strictly earlier than
    /// the cold run — and converges on the same plan.
    #[test]
    fn warm_start_deploys_seeded_decision_earlier() {
        let (image, head, back, load_pc) = loop_image();
        let cfg = OptimizerConfig {
            deploy: DeployMode::InPlace,
            warmup_ticks: 10,
            warm_warmup_ticks: 2,
            ..Default::default()
        };
        let profile = hot_profile(load_pc, head, back, 1.0);
        let first_deploy = |opt: &mut Optimizer| -> Option<(u64, OptKind)> {
            for tick in 1..=20u64 {
                for action in opt.consider(&profile) {
                    if let PlanAction::Apply(plan) = action {
                        return Some((tick, plan.kind));
                    }
                }
            }
            None
        };

        let mut cold = Optimizer::new(cfg, image.clone());
        let (cold_tick, cold_kind) = first_deploy(&mut cold).expect("cold run deploys");
        assert_eq!(cold_tick, 11, "cold run waits out the full warmup");

        let mut warm = Optimizer::new(cfg, image);
        warm.warm_start(WarmSeed {
            decisions: vec![(head, cold_kind)],
            blacklist: vec![],
        });
        assert!(warm.is_warm());
        let (warm_tick, warm_kind) = first_deploy(&mut warm).expect("warm run deploys");
        assert_eq!(warm_kind, cold_kind, "warm run converges on the same plan");
        assert!(
            warm_tick < cold_tick,
            "warm deploy at tick {warm_tick} must beat cold tick {cold_tick}"
        );
        assert_eq!(warm.warm_hits(), 1);
        assert_eq!(warm.warm_mismatches(), 0);
    }

    /// A seed the live profile contradicts is dropped: no early deploy, and
    /// after the full warmup the normal path decides from scratch.
    #[test]
    fn warm_mismatch_falls_back_to_cold_path() {
        let (image, head, back, load_pc) = loop_image();
        let cfg = OptimizerConfig {
            deploy: DeployMode::InPlace,
            warmup_ticks: 6,
            warm_warmup_ticks: 1,
            ..Default::default()
        };
        // Live profile says the working set fits → NoPrefetch; seed claims
        // the prior run deployed ExclHint.
        let profile = hot_profile(load_pc, head, back, 1.0);
        let mut opt = Optimizer::new(cfg, image);
        opt.warm_start(WarmSeed {
            decisions: vec![(head, OptKind::ExclHint)],
            blacklist: vec![],
        });
        let mut deploys = Vec::new();
        for tick in 1..=12u64 {
            for action in opt.consider(&profile) {
                if let PlanAction::Apply(plan) = action {
                    deploys.push((tick, plan.kind));
                }
            }
        }
        assert_eq!(opt.warm_mismatches(), 1);
        assert_eq!(opt.warm_hits(), 0);
        assert_eq!(deploys.len(), 1, "exactly one deployment: {deploys:?}");
        let (tick, kind) = deploys[0];
        assert_eq!(kind, OptKind::NoPrefetch, "live profile wins");
        assert!(
            tick > 6,
            "mismatched seed must not deploy early (tick {tick})"
        );
    }

    /// Seeded blacklist entries (prior reverts) are never re-trialed.
    #[test]
    fn seeded_blacklist_suppresses_deployment() {
        let (image, head, back, load_pc) = loop_image();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                deploy: DeployMode::InPlace,
                warmup_ticks: 0,
                ..Default::default()
            },
            image,
        );
        opt.warm_start(WarmSeed {
            decisions: vec![],
            blacklist: vec![head],
        });
        let profile = hot_profile(load_pc, head, back, 1.0);
        for _ in 0..8 {
            assert!(opt.consider(&profile).is_empty());
        }
        assert_eq!(opt.active_deployments(), 0);
    }

    #[test]
    fn optkind_names_round_trip() {
        for kind in OptKind::ALL {
            assert_eq!(OptKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(OptKind::from_name("bogus"), None);
    }

    /// The OptKind → RewriteKind conversion must stay name-aligned with the
    /// verifier (same pinning discipline as the store's kind names).
    #[test]
    fn optkind_maps_to_verifier_rewrite_kind_by_name() {
        for kind in OptKind::ALL {
            let rk: cobra_verify::RewriteKind = kind.into();
            assert_eq!(kind.name(), rk.name());
        }
        assert_eq!(OptKind::ALL.len(), cobra_verify::RewriteKind::ALL.len());
    }

    /// End-to-end deploy-gate rejection: a loop whose prefetch base register
    /// feeds a real consumer later in the body. The site selector happily
    /// picks the lfetch and `build_plan` emits a noprefetch plan, but
    /// removing the post-incrementing lfetch would starve the consumer —
    /// the verifier must catch it, blacklist the loop, and deploy nothing.
    #[test]
    fn verify_gate_rejects_unsafe_plan_and_blacklists() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        let head = a.here();
        let load_pc = a.ldfd(16, 32, 2, 8);
        a.lfetch_nt1(16, 27, 8);
        a.mov(5, 27); // reads the lfetch's base: removal is unsafe
        let back = a.br_ctop(top);
        a.hlt();
        let image = a.finish();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                strategy: Strategy::NoPrefetch,
                deploy: DeployMode::InPlace,
                warmup_ticks: 0,
                ..Default::default()
            },
            image,
        );
        let profile = hot_profile(load_pc, head, back, 1.0);
        let actions = opt.consider(&profile);
        assert!(
            actions.is_empty(),
            "unsafe plan must not deploy: {actions:?}"
        );
        assert_eq!(opt.verify_rejects(), 1);
        assert_eq!(opt.active_deployments(), 0);
        // Blacklisted: never retried.
        assert!(opt.consider(&profile).is_empty());
        assert_eq!(opt.verify_rejects(), 1);
        // The same loop with `.excl` (no removal) is safe and deploys.
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        let head = a.here();
        let load_pc = a.ldfd(16, 32, 2, 8);
        a.lfetch_nt1(16, 27, 8);
        a.mov(5, 27);
        let back = a.br_ctop(top);
        a.hlt();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                strategy: Strategy::ExclHint,
                deploy: DeployMode::InPlace,
                warmup_ticks: 0,
                ..Default::default()
            },
            a.finish(),
        );
        let actions = opt.consider(&hot_profile(load_pc, head, back, 1.0));
        assert_eq!(actions.len(), 1);
        assert_eq!(opt.verify_rejects(), 0);
    }

    /// Warm seeds are re-verified against the live image at attach: a head
    /// past the main text (stale/corrupt snapshot) is dropped and counted,
    /// while valid seeds and the normal decision path are unaffected.
    #[test]
    fn warm_seed_with_invalid_head_is_dropped() {
        let (image, head, back, load_pc) = loop_image();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                deploy: DeployMode::InPlace,
                warmup_ticks: 0,
                ..Default::default()
            },
            image,
        );
        opt.warm_start(WarmSeed {
            decisions: vec![(9999, OptKind::NoPrefetch), (head, OptKind::NoPrefetch)],
            blacklist: vec![],
        });
        assert_eq!(opt.verify_rejects(), 1);
        // The valid seed still deploys through the normal path.
        let profile = hot_profile(load_pc, head, back, 1.0);
        let actions = opt.consider(&profile);
        assert_eq!(actions.len(), 1);
        assert_eq!(opt.warm_hits(), 1);
        assert_eq!(opt.verify_rejects(), 1);
    }

    /// `verify_plan` is the same check the deploy gate runs; a tampered
    /// write in an otherwise-genuine plan must fail it.
    #[test]
    fn verify_plan_rejects_tampered_plan() {
        let (image, head, back, load_pc) = loop_image();
        let mut opt = Optimizer::new(
            OptimizerConfig {
                deploy: DeployMode::InPlace,
                warmup_ticks: 0,
                ..Default::default()
            },
            image.clone(),
        );
        let actions = opt.consider(&hot_profile(load_pc, head, back, 1.0));
        let mut plan = match actions.into_iter().next() {
            Some(PlanAction::Apply(p)) => p,
            other => panic!("{other:?}"),
        };
        let window = opt.config().trace.entry_window_slots;
        verify_plan(&image, &plan, window).expect("genuine plan verifies");
        plan.writes[0].1 = encode(&Insn::new(Op::Nop {
            unit: cobra_isa::Unit::I,
        }));
        let err = verify_plan(&image, &plan, window).unwrap_err();
        assert!(err.to_string().contains("violation"));
    }
}
