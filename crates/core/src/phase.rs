//! Phase detection — the *Continuous Re-Adaptation* in COBRA's name.
//!
//! §3.1: "using the number of L2 and L3 misses per 1000 instructions could
//! track the changes in cache miss patterns for detecting changes in data
//! working sets and their access behavior." The detector keeps an
//! exponentially-smoothed estimate of the miss rates; when a fresh window
//! departs from the estimate by more than a configurable factor, it reports
//! a phase change so the framework can reset the profile and let the
//! optimizer re-evaluate (e.g. after the program moves to a new data set).

use serde::{Deserialize, Serialize};

use crate::profile::CounterWindow;

/// Detector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PhaseConfig {
    /// A window whose miss rate differs from the smoothed estimate by more
    /// than this factor (either direction) signals a phase change.
    pub change_factor: f64,
    /// Exponential smoothing weight for the running estimate.
    pub alpha: f64,
    /// Windows to observe before phase changes can fire (warm-up).
    pub warmup_windows: u32,
    /// Minimum instructions per window for a meaningful rate.
    pub min_instructions: u64,
}

impl Default for PhaseConfig {
    fn default() -> Self {
        // Multi-pass programs alternate between loops with very different
        // miss rates within one "phase"; the factor and warm-up are sized so
        // only sustained working-set changes fire.
        PhaseConfig {
            change_factor: 4.0,
            alpha: 0.3,
            warmup_windows: 6,
            min_instructions: 20_000,
        }
    }
}

/// Running phase state.
#[derive(Debug, Clone)]
pub struct PhaseDetector {
    cfg: PhaseConfig,
    smoothed_l2_kinst: f64,
    smoothed_l3_kinst: f64,
    windows_seen: u32,
    phases: u64,
}

impl PhaseDetector {
    pub fn new(cfg: PhaseConfig) -> Self {
        PhaseDetector {
            cfg,
            smoothed_l2_kinst: 0.0,
            smoothed_l3_kinst: 0.0,
            windows_seen: 0,
            phases: 1,
        }
    }

    /// Feed one merged window; returns true when a phase change is detected
    /// (the estimate restarts from the new window).
    pub fn observe(&mut self, window: &CounterWindow) -> bool {
        if window.instructions < self.cfg.min_instructions {
            return false;
        }
        let l2 = window.l2_per_kinst();
        let l3 = window.l3_per_kinst();
        self.windows_seen += 1;
        // The first meaningful window *defines* the estimate — comparing it
        // against the initial zero would fire spuriously with warmup 0.
        if self.windows_seen == 1 || self.windows_seen <= self.cfg.warmup_windows {
            self.fold(l2, l3);
            return false;
        }
        let changed = Self::departed(self.smoothed_l2_kinst, l2, self.cfg.change_factor)
            || Self::departed(self.smoothed_l3_kinst, l3, self.cfg.change_factor);
        if changed {
            // Restart the estimate at the new behaviour.
            self.smoothed_l2_kinst = l2;
            self.smoothed_l3_kinst = l3;
            self.windows_seen = 1;
            self.phases += 1;
            true
        } else {
            self.fold(l2, l3);
            false
        }
    }

    fn fold(&mut self, l2: f64, l3: f64) {
        let a = self.cfg.alpha;
        if self.windows_seen == 1 {
            self.smoothed_l2_kinst = l2;
            self.smoothed_l3_kinst = l3;
        } else {
            self.smoothed_l2_kinst = a * l2 + (1.0 - a) * self.smoothed_l2_kinst;
            self.smoothed_l3_kinst = a * l3 + (1.0 - a) * self.smoothed_l3_kinst;
        }
    }

    fn departed(smoothed: f64, fresh: f64, factor: f64) -> bool {
        // Both near zero: no change. A rate appearing from (or vanishing to)
        // nothing is a change once it is non-trivial.
        let floor = 0.05;
        let s = smoothed.max(floor);
        let f = fresh.max(floor);
        (f / s) > factor || (s / f) > factor
    }

    /// Phases observed so far (starts at 1).
    pub fn phases(&self) -> u64 {
        self.phases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(l2: u64, l3: u64) -> CounterWindow {
        CounterWindow {
            instructions: 100_000,
            cycles: 150_000,
            bus_memory: 100,
            bus_coherent: 10,
            l2_miss: l2,
            l3_miss: l3,
        }
    }

    #[test]
    fn stable_behaviour_never_fires() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        for _ in 0..50 {
            assert!(!d.observe(&window(500, 300)));
        }
        assert_eq!(d.phases(), 1);
    }

    #[test]
    fn working_set_growth_fires_once_then_stabilizes() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        for _ in 0..10 {
            d.observe(&window(500, 100));
        }
        // Data set grows: L3 misses jump 10x.
        assert!(d.observe(&window(500, 1000)));
        assert_eq!(d.phases(), 2);
        // The new behaviour is now the baseline.
        let mut fired = false;
        for _ in 0..10 {
            fired |= d.observe(&window(520, 1050));
        }
        assert!(!fired);
    }

    #[test]
    fn shrinking_working_set_also_fires() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        for _ in 0..10 {
            d.observe(&window(2000, 1500));
        }
        assert!(d.observe(&window(2000, 10)));
    }

    /// The very first window can never fire: it *defines* the estimate.
    #[test]
    fn first_window_never_fires_even_without_warmup() {
        let cfg = PhaseConfig {
            warmup_windows: 0,
            ..PhaseConfig::default()
        };
        let mut d = PhaseDetector::new(cfg);
        assert!(!d.observe(&window(9000, 9000)));
        assert_eq!(d.phases(), 1);
        // And it seeded the baseline: a similar follow-up stays quiet, a
        // collapse fires.
        assert!(!d.observe(&window(9100, 8900)));
        assert!(d.observe(&window(10, 10)));
        assert_eq!(d.phases(), 2);
    }

    /// `departed` uses a strict `>`: a fresh rate at *exactly* the change
    /// factor is still the same phase; one epsilon beyond departs.
    #[test]
    fn exact_threshold_delta_does_not_fire() {
        let cfg = PhaseConfig {
            change_factor: 4.0,
            alpha: 0.0, // freeze the estimate at the seed for exactness
            warmup_windows: 1,
            ..PhaseConfig::default()
        };
        let mut d = PhaseDetector::new(cfg);
        // Seed: 100 misses / 100k inst = 1.0 per kinst on both levels.
        assert!(!d.observe(&window(100, 100)));
        // Exactly 4.0x on both levels: ratio == factor, strict > says no.
        assert!(!d.observe(&window(400, 400)));
        assert_eq!(d.phases(), 1);
        // One miss beyond the exact multiple crosses the threshold.
        assert!(d.observe(&window(401, 100)));
        assert_eq!(d.phases(), 2);
    }

    /// Zero-instruction windows (idle quantum, all CPUs stalled out of the
    /// sampling window) are skipped without dividing by zero or aging the
    /// warm-up counter.
    #[test]
    fn zero_instruction_windows_are_inert() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        let empty = CounterWindow::default();
        for _ in 0..100 {
            assert!(!d.observe(&empty));
        }
        assert_eq!(d.phases(), 1);
        // The detector is still in pristine warm-up: the usual warm-up
        // window count must elapse before anything can fire.
        for _ in 0..PhaseConfig::default().warmup_windows {
            assert!(!d.observe(&window(500, 100)));
        }
        assert!(d.observe(&window(500, 5000)));
        assert_eq!(d.phases(), 2);
    }

    /// Zero misses on a busy window: the 0.05 floor keeps a silent cache
    /// from reading as an infinite-ratio phase change against a quiet
    /// baseline, while a real burst from silence still fires.
    #[test]
    fn silence_to_silence_is_stable_but_burst_from_silence_fires() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        for _ in 0..10 {
            assert!(!d.observe(&window(0, 0)));
        }
        assert_eq!(d.phases(), 1);
        // 100 misses/kinst against a floored 0.05 baseline: departs.
        assert!(d.observe(&window(10_000, 0)));
        assert_eq!(d.phases(), 2);
    }

    #[test]
    fn warmup_and_tiny_windows_are_ignored() {
        let mut d = PhaseDetector::new(PhaseConfig::default());
        // Wild swings during warm-up do not fire.
        assert!(!d.observe(&window(10, 5)));
        assert!(!d.observe(&window(4000, 2000)));
        // Windows below the instruction floor are skipped entirely.
        let tiny = CounterWindow {
            instructions: 10,
            ..window(9999, 9999)
        };
        for _ in 0..20 {
            assert!(!d.observe(&tiny));
        }
    }
}
