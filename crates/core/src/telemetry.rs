//! Structured telemetry for the COBRA decision pipeline.
//!
//! Every stage of the Figure-4 pipeline can explain itself through typed,
//! cycle-stamped events: quantum boundaries with per-CPU HPM counter
//! snapshots, kernel-buffer drains, USB occupancy, per-loop delinquency
//! classifications, phase-change triggers, trace-cache deployments, CPI
//! trial windows, and revert/blacklist decisions.
//!
//! Events flow through a **bounded, drop-counting ring** — helper threads
//! publish with a non-blocking `try_send` and never stall the optimization
//! pipeline; when the ring is full the record is counted and discarded —
//! into a per-run [`TelemetrySink`]:
//!
//! * [`TelemetrySink::memory`] — an in-process [`TelemetryLog`] with a
//!   query API, for tests and programmatic consumers;
//! * [`TelemetrySink::jsonl_file`] — a serde-backed JSON-Lines writer, one
//!   record per line, consumed by `cobra-repro ... --trace-out FILE` and
//!   summarized by `cobra-repro trace FILE`.
//!
//! Records carry a global sequence number assigned at emission. Events
//! emitted by one thread are totally ordered among themselves; interleaving
//! *across* helper threads within a tick is scheduling-dependent, but the
//! synchronous tick handshake guarantees every event of tick *t* is in the
//! ring before the framework drains it at the end of tick *t*, so drained
//! record *counts* (and the overhead cycles charged for them) stay
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};

use cobra_isa::CodeAddr;
use cobra_machine::{CpuStats, Machine};
use serde::{Deserialize, Serialize};

use crate::optimizer::OptKind;

/// Default ring capacity (records buffered between drains).
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One CPU's HPM counter totals at a quantum boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuCounterSnapshot {
    pub cpu: u32,
    pub inst_retired: u64,
    pub l2_miss: u64,
    pub l3_miss: u64,
    pub bus_memory: u64,
    /// Sum of the coherent snoop-response events.
    pub coherent: u64,
}

impl CpuCounterSnapshot {
    pub fn from_stats(cpu: u32, stats: &CpuStats) -> Self {
        let (inst_retired, l2_miss, l3_miss, bus_memory, coherent) = stats.snapshot_counts();
        CpuCounterSnapshot {
            cpu,
            inst_retired,
            l2_miss,
            l3_miss,
            bus_memory,
            coherent,
        }
    }

    /// Snapshots for every CPU of a machine.
    pub fn all(machine: &Machine) -> Vec<CpuCounterSnapshot> {
        machine
            .stats()
            .iter()
            .enumerate()
            .map(|(cpu, s)| CpuCounterSnapshot::from_stats(cpu as u32, s))
            .collect()
    }
}

/// One pipeline event. Variants mirror the stages of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A quantum boundary processed by the framework, with per-CPU HPM
    /// counter snapshots.
    Quantum {
        tick: u64,
        cycle: u64,
        samples_forwarded: u64,
        cpus: Vec<CpuCounterSnapshot>,
    },
    /// One CPU's kernel sampling buffer drained into its monitoring thread.
    KernelDrain {
        tick: u64,
        cycle: u64,
        cpu: u32,
        samples: usize,
        dropped_total: u64,
    },
    /// A monitoring thread's User Sampling Buffer occupancy at tick reduce.
    UsbLevel {
        tick: u64,
        cpu: u32,
        occupancy: usize,
        capacity: usize,
        dropped_total: u64,
    },
    /// The optimizer classified a candidate loop's prefetch behaviour.
    LoopClassified {
        tick: u64,
        cycle: u64,
        loop_head: CodeAddr,
        back_edge: CodeAddr,
        /// Whether the profile says the loop's prefetches are effective
        /// (worth keeping) — the §5.2 gate.
        prefetch_effective: bool,
        /// The rewrite chosen, or `None` when the optimizer declined.
        decision: Option<OptKind>,
    },
    /// A monitoring thread's delta arrived after its tick had already been
    /// folded and was dropped (`tick` is the latest folded tick at drop
    /// time; `delta_tick` is the tick the delta belonged to).
    StaleDelta {
        tick: u64,
        cpu: u32,
        delta_tick: u64,
    },
    /// The phase detector fired; profile history was discarded.
    PhaseChange { tick: u64, cycle: u64, phases: u64 },
    /// A plan was applied to the live image at a quantum safe point.
    Deploy {
        tick: u64,
        cycle: u64,
        plan_id: u64,
        kind: OptKind,
        loop_head: CodeAddr,
        words_patched: usize,
        trace_entry: Option<CodeAddr>,
    },
    /// A post-deployment CPI trial window was judged.
    CpiTrial {
        tick: u64,
        cycle: u64,
        plan_id: u64,
        post_ticks: u64,
        baseline_cpi: f64,
        post_cpi: f64,
        regressed: bool,
    },
    /// A regressed deployment was reverted on the live image.
    Revert {
        tick: u64,
        cycle: u64,
        plan_id: u64,
        reason: String,
    },
    /// A loop was blacklisted (trialled once, never touched again).
    Blacklist {
        tick: u64,
        cycle: u64,
        loop_head: CodeAddr,
    },
    /// A revert failed mid-restore on the live image: the framework stopped
    /// writing, poisoned the loop, and kept running (never panics).
    RevertFailed {
        tick: u64,
        cycle: u64,
        plan_id: u64,
        loop_head: CodeAddr,
        /// Address whose restore write failed.
        addr: CodeAddr,
        /// Words successfully restored before the failure.
        words_restored: usize,
        detail: String,
    },
    /// A deployment failed mid-apply on the live image: the framework
    /// rolled back the words already written and poisoned the loop.
    DeployFailed {
        tick: u64,
        cycle: u64,
        plan_id: u64,
        loop_head: CodeAddr,
        detail: String,
    },
    /// One tournament candidate finished its trial window (and was
    /// reverted pending the tournament outcome).
    CandidateTrial {
        tick: u64,
        cycle: u64,
        loop_head: CodeAddr,
        candidate: String,
        plan_id: u64,
        trial_ticks: u64,
        baseline_cpi: f64,
        cpi: f64,
    },
    /// A candidate tournament settled: either the lowest-CPI candidate was
    /// promoted or the loop was blacklisted.
    TournamentOutcome {
        tick: u64,
        cycle: u64,
        loop_head: CodeAddr,
        /// Candidates the tournament started with.
        candidates: usize,
        winner: Option<String>,
        winner_cpi: Option<f64>,
        promoted: bool,
    },
    /// A candidate loop contained a word the decoder rejects; the loop was
    /// skipped (and blacklisted) instead of aborting the optimizer thread.
    UndecodableLoop {
        tick: u64,
        cycle: u64,
        loop_head: CodeAddr,
    },
    /// The `cobra-verify` deploy gate rejected a plan (loop blacklisted) or
    /// a warm seed (seed dropped); `reason` is the verifier's one-line
    /// violation summary.
    VerifyReject {
        tick: u64,
        cycle: u64,
        loop_head: CodeAddr,
        reason: String,
    },
    /// A store snapshot matched this run's binary/machine key and seeded
    /// the optimizer at attach.
    WarmStart {
        tick: u64,
        cycle: u64,
        seeded_decisions: usize,
        seeded_blacklist: usize,
        /// Damaged store records skipped while loading the snapshot.
        skipped_records: u64,
    },
    /// The store could not provide (or persist) a snapshot — corrupt
    /// header, version/key mismatch, or I/O failure. The run continues
    /// cold; this event is the only trace of the rejection.
    StoreError {
        tick: u64,
        cycle: u64,
        detail: String,
    },
    /// An updated snapshot was committed to the store at detach.
    StoreSave {
        tick: u64,
        cycle: u64,
        records: usize,
        path: String,
    },
    /// A fleet aggregation server supplied the warm seed at attach (it
    /// outranks the local store; the store snapshot still merges into the
    /// detach save).
    FleetSeed {
        tick: u64,
        cycle: u64,
        seeded_decisions: usize,
        seeded_winners: usize,
        seeded_blacklist: usize,
        /// Runs the fleet had folded into the served seed.
        runs: u64,
    },
    /// The detach snapshot was uploaded to the fleet server.
    FleetUpload {
        tick: u64,
        cycle: u64,
        /// Records in the uploaded snapshot.
        records: usize,
        /// The server's folded run total for the key after this upload.
        runs_total: u64,
    },
    /// A fleet request failed; the run degraded to the local store (then
    /// cold) and continued. `stage` is `"fetch"` or `"upload"`.
    FleetError {
        tick: u64,
        cycle: u64,
        stage: String,
        detail: String,
    },
    /// Every thread left the original loop body after a trace deployment:
    /// the forward OSR redirects were disarmed. `migrations` counts the
    /// back edges actually diverted into the new version (0 under
    /// `COBRA_OSR=0`, where the watch still measures convergence).
    OsrMigrate {
        tick: u64,
        cycle: u64,
        plan_id: u64,
        migrations: u64,
        /// Ticks from arming (deployment) to convergence — this plan's
        /// contribution to `ticks_to_all_optimized`.
        ticks_since_deploy: u64,
    },
    /// Every thread left a reverted trace clone: the reverse OSR redirects
    /// were disarmed. `migrations` counts back edges diverted back to the
    /// original body (without OSR, threads drain only at natural loop
    /// completion).
    OsrRevert {
        tick: u64,
        cycle: u64,
        plan_id: u64,
        migrations: u64,
        /// Ticks from the revert to convergence.
        ticks_since_revert: u64,
    },
    /// `cobra-verify::check_osr_map` could not prove a deployment's state
    /// mapping total and type-correct; the deployment proceeded with
    /// entry-only transfer (no redirects armed).
    OsrRejected {
        tick: u64,
        cycle: u64,
        plan_id: u64,
        loop_head: CodeAddr,
        reason: String,
    },
    /// The framework detached; final counters. The `block_*` fields carry
    /// the block-dispatch fallback breakdown (why cycles left the block
    /// engine for the per-cycle reference loop) and the lockstep horizon
    /// totals; traces written before the breakdown existed load with zeros.
    Detach {
        tick: u64,
        cycle: u64,
        records_dropped: u64,
        #[serde(default)]
        block_fallback_mem_boundary: u64,
        #[serde(default)]
        block_fallback_sampling: u64,
        #[serde(default)]
        block_fallback_no_running: u64,
        #[serde(default)]
        block_fallback_other: u64,
        #[serde(default)]
        block_horizon_stretches: u64,
        #[serde(default)]
        block_horizon_cycles: u64,
    },
}

impl TelemetryEvent {
    /// Stable category name, used by summaries and query filters.
    pub fn category(&self) -> &'static str {
        match self {
            TelemetryEvent::Quantum { .. } => "quantum",
            TelemetryEvent::KernelDrain { .. } => "kernel_drain",
            TelemetryEvent::UsbLevel { .. } => "usb_level",
            TelemetryEvent::LoopClassified { .. } => "loop_classified",
            TelemetryEvent::StaleDelta { .. } => "stale_delta",
            TelemetryEvent::PhaseChange { .. } => "phase_change",
            TelemetryEvent::Deploy { .. } => "deploy",
            TelemetryEvent::CpiTrial { .. } => "cpi_trial",
            TelemetryEvent::Revert { .. } => "revert",
            TelemetryEvent::Blacklist { .. } => "blacklist",
            TelemetryEvent::RevertFailed { .. } => "revert_failed",
            TelemetryEvent::DeployFailed { .. } => "deploy_failed",
            TelemetryEvent::CandidateTrial { .. } => "candidate_trial",
            TelemetryEvent::TournamentOutcome { .. } => "tournament",
            TelemetryEvent::UndecodableLoop { .. } => "undecodable_loop",
            TelemetryEvent::VerifyReject { .. } => "verify_reject",
            TelemetryEvent::WarmStart { .. } => "warm_start",
            TelemetryEvent::StoreError { .. } => "store_error",
            TelemetryEvent::StoreSave { .. } => "store_save",
            TelemetryEvent::FleetSeed { .. } => "fleet_seed",
            TelemetryEvent::FleetUpload { .. } => "fleet_upload",
            TelemetryEvent::FleetError { .. } => "fleet_error",
            TelemetryEvent::OsrMigrate { .. } => "osr_migrate",
            TelemetryEvent::OsrRevert { .. } => "osr_revert",
            TelemetryEvent::OsrRejected { .. } => "osr_rejected",
            TelemetryEvent::Detach { .. } => "detach",
        }
    }
}

/// A sequenced event as it appears in sinks and trace files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryRecord {
    /// Global emission order (one counter per attached run).
    pub seq: u64,
    pub event: TelemetryEvent,
}

struct EmitterShared {
    tx: Sender<TelemetryRecord>,
    seq: AtomicU64,
    dropped: AtomicU64,
}

/// Cloneable, thread-safe event publisher. Emission is non-blocking: a
/// full ring drops the record and counts it, so telemetry can never stall
/// the monitoring or optimization threads.
#[derive(Clone)]
pub struct TelemetryEmitter {
    shared: Arc<EmitterShared>,
}

impl fmt::Debug for TelemetryEmitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryEmitter")
            .field("emitted", &self.emitted())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TelemetryEmitter {
    /// Publish one event. Returns `false` when the ring was full and the
    /// record was dropped.
    pub fn emit(&self, event: TelemetryEvent) -> bool {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        match self.shared.tx.try_send(TelemetryRecord { seq, event }) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Records dropped so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Events emitted so far (including dropped ones).
    pub fn emitted(&self) -> u64 {
        self.shared.seq.load(Ordering::Relaxed)
    }
}

/// Where drained records go.
///
/// Sinks are cheap to clone (shared interior) so one sink can serve many
/// parallel runs — e.g. every arm of an `npbsuite` sweep appending to one
/// JSONL file.
#[derive(Clone)]
pub enum TelemetrySink {
    /// Append to an in-process [`TelemetryLog`].
    Memory(Arc<Mutex<TelemetryLog>>),
    /// Write each record as one JSON line.
    Jsonl(Arc<Mutex<Box<dyn Write + Send>>>),
}

impl fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TelemetrySink::Memory(_) => "TelemetrySink::Memory",
            TelemetrySink::Jsonl(_) => "TelemetrySink::Jsonl",
        })
    }
}

impl TelemetrySink {
    /// An in-memory sink; query the returned log after the run.
    pub fn memory() -> (TelemetrySink, Arc<Mutex<TelemetryLog>>) {
        let log = Arc::new(Mutex::new(TelemetryLog::default()));
        (TelemetrySink::Memory(log.clone()), log)
    }

    /// A JSONL sink over an arbitrary writer.
    pub fn jsonl(writer: Box<dyn Write + Send>) -> TelemetrySink {
        TelemetrySink::Jsonl(Arc::new(Mutex::new(writer)))
    }

    /// A JSONL sink appending to `path` (created/truncated).
    pub fn jsonl_file(path: &std::path::Path) -> std::io::Result<TelemetrySink> {
        let f = std::fs::File::create(path)?;
        Ok(TelemetrySink::jsonl(Box::new(std::io::BufWriter::new(f))))
    }

    fn write(&self, record: TelemetryRecord) {
        match self {
            TelemetrySink::Memory(log) => {
                // A panicked holder leaves the log intact (records is just
                // a Vec); keep draining rather than poisoning telemetry.
                log.lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .records
                    .push(record)
            }
            TelemetrySink::Jsonl(w) => {
                let mut w = w.lock().unwrap_or_else(|p| p.into_inner());
                // Invariant: every TelemetryEvent field is serde-derived
                // plain data; serialization cannot fail.
                let line = serde_json::to_string(&record).expect("telemetry record serializes");
                let _ = writeln!(w, "{line}");
            }
        }
    }

    /// Flush buffered output (JSONL sinks; no-op for memory).
    pub fn flush(&self) {
        if let TelemetrySink::Jsonl(w) = self {
            let _ = w.lock().unwrap_or_else(|p| p.into_inner()).flush();
        }
    }
}

/// The receiving half of the ring: owned by the framework, drained at
/// quantum safe points into the sink.
pub struct TelemetryHub {
    rx: Receiver<TelemetryRecord>,
    emitter: TelemetryEmitter,
    sink: TelemetrySink,
    drained: u64,
}

impl TelemetryHub {
    /// Build a hub with a bounded ring of `capacity` records.
    pub fn new(sink: TelemetrySink, capacity: usize) -> TelemetryHub {
        let (tx, rx) = bounded(capacity.max(1));
        let emitter = TelemetryEmitter {
            shared: Arc::new(EmitterShared {
                tx,
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        };
        TelemetryHub {
            rx,
            emitter,
            sink,
            drained: 0,
        }
    }

    /// A publisher handle for a helper thread.
    pub fn emitter(&self) -> TelemetryEmitter {
        self.emitter.clone()
    }

    /// Move every buffered record into the sink; returns how many records
    /// were processed (the unit the framework charges overhead cycles for).
    pub fn drain(&mut self) -> u64 {
        let mut n = 0u64;
        while let Ok(rec) = self.rx.try_recv() {
            self.sink.write(rec);
            n += 1;
        }
        self.drained += n;
        n
    }

    /// Records drained into the sink over the hub's lifetime.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Records dropped at emission because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.emitter.dropped()
    }

    /// Final drain + sink flush at detach.
    pub fn finish(mut self) -> (u64, u64) {
        self.drain();
        self.sink.flush();
        (self.drained, self.emitter.dropped())
    }
}

/// In-memory record store with a small query API.
#[derive(Debug, Default)]
pub struct TelemetryLog {
    records: Vec<TelemetryRecord>,
}

impl TelemetryLog {
    pub fn records(&self) -> &[TelemetryRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records of one category, in emission order.
    pub fn of_category(&self, category: &str) -> Vec<&TelemetryRecord> {
        self.records
            .iter()
            .filter(|r| r.event.category() == category)
            .collect()
    }

    pub fn count(&self, category: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.event.category() == category)
            .count()
    }

    /// `(tick, plan_id)` of every deployment, in order.
    pub fn deployments(&self) -> Vec<(u64, u64)> {
        self.records
            .iter()
            .filter_map(|r| match &r.event {
                TelemetryEvent::Deploy { tick, plan_id, .. } => Some((*tick, *plan_id)),
                _ => None,
            })
            .collect()
    }

    /// Summarize, exactly as `cobra-repro trace` does for a file.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary::from_records(&self.records)
    }
}

/// Aggregate view of a trace (from a log or a JSONL file).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    pub total_records: u64,
    /// `(category, count)` sorted by category name.
    pub per_category: Vec<(String, u64)>,
    /// One line per deployment: `(tick, plan_id, kind, loop_head)`.
    pub deployments: Vec<(u64, u64, String, CodeAddr)>,
    /// One line per revert: `(tick, plan_id, reason)`.
    pub reverts: Vec<(u64, u64, String)>,
    pub phase_changes: u64,
    /// Ring drops reported by the final `detach` record, if present.
    pub records_dropped: u64,
    /// Block-dispatch fallback breakdown from the final `detach` record:
    /// `(reason, cycles)`, omitting zero reasons. Empty for traces recorded
    /// before the breakdown existed.
    #[serde(default)]
    pub block_fallbacks: Vec<(String, u64)>,
    /// Lockstep multicore `(stretches, cycles)` from the final `detach`
    /// record.
    #[serde(default)]
    pub block_horizons: (u64, u64),
    /// Fleet traffic: `(uploads, seeds, errors)`. Zero for traces recorded
    /// without `builder().fleet(addr)`.
    #[serde(default)]
    pub fleet: (u64, u64, u64),
    /// On-stack replacement totals: `(migrations, reverse_migrations,
    /// rejects)` summed over the `osr_*` records. Zero for traces recorded
    /// before OSR existed or with it off.
    #[serde(default)]
    pub osr: (u64, u64, u64),
}

impl TraceSummary {
    pub fn from_records(records: &[TelemetryRecord]) -> TraceSummary {
        let mut per_category: BTreeMap<&'static str, u64> = BTreeMap::new();
        let mut deployments = Vec::new();
        let mut reverts = Vec::new();
        let mut phase_changes = 0u64;
        let mut records_dropped = 0u64;
        let mut block_fallbacks = Vec::new();
        let mut block_horizons = (0u64, 0u64);
        let mut osr = (0u64, 0u64, 0u64);
        for r in records {
            *per_category.entry(r.event.category()).or_insert(0) += 1;
            match &r.event {
                TelemetryEvent::Deploy {
                    tick,
                    plan_id,
                    kind,
                    loop_head,
                    ..
                } => {
                    deployments.push((*tick, *plan_id, kind.name().to_string(), *loop_head));
                }
                TelemetryEvent::Revert {
                    tick,
                    plan_id,
                    reason,
                    ..
                } => {
                    reverts.push((*tick, *plan_id, reason.clone()));
                }
                TelemetryEvent::PhaseChange { .. } => phase_changes += 1,
                TelemetryEvent::OsrMigrate { migrations, .. } => osr.0 += migrations,
                TelemetryEvent::OsrRevert { migrations, .. } => osr.1 += migrations,
                TelemetryEvent::OsrRejected { .. } => osr.2 += 1,
                TelemetryEvent::Detach {
                    records_dropped: d,
                    block_fallback_mem_boundary,
                    block_fallback_sampling,
                    block_fallback_no_running,
                    block_fallback_other,
                    block_horizon_stretches,
                    block_horizon_cycles,
                    ..
                } => {
                    records_dropped = *d;
                    block_fallbacks = [
                        ("multi_core_mem_boundary", *block_fallback_mem_boundary),
                        ("sampling", *block_fallback_sampling),
                        ("no_running_core", *block_fallback_no_running),
                        ("other", *block_fallback_other),
                    ]
                    .into_iter()
                    .filter(|&(_, n)| n > 0)
                    .map(|(k, n)| (k.to_string(), n))
                    .collect();
                    block_horizons = (*block_horizon_stretches, *block_horizon_cycles);
                }
                _ => {}
            }
        }
        let fleet = (
            per_category.get("fleet_upload").copied().unwrap_or(0),
            per_category.get("fleet_seed").copied().unwrap_or(0),
            per_category.get("fleet_error").copied().unwrap_or(0),
        );
        TraceSummary {
            total_records: records.len() as u64,
            per_category: per_category
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            deployments,
            reverts,
            phase_changes,
            records_dropped,
            block_fallbacks,
            block_horizons,
            fleet,
            osr,
        }
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} telemetry records ({} dropped at emission)",
            self.total_records, self.records_dropped
        )?;
        writeln!(f, "events per category:")?;
        for (cat, n) in &self.per_category {
            writeln!(f, "  {cat:<16} {n}")?;
        }
        writeln!(f, "deployment timeline ({}):", self.deployments.len())?;
        for (tick, plan_id, kind, head) in &self.deployments {
            writeln!(f, "  tick {tick:>5}: plan {plan_id} {kind} @ loop {head}")?;
        }
        writeln!(f, "reverts ({}):", self.reverts.len())?;
        for (tick, plan_id, reason) in &self.reverts {
            writeln!(f, "  tick {tick:>5}: plan {plan_id} — {reason}")?;
        }
        writeln!(f, "phase changes: {}", self.phase_changes)?;
        if !self.block_fallbacks.is_empty() || self.block_horizons.0 > 0 {
            writeln!(f, "block-dispatch fallback cycles by reason:")?;
            for (reason, n) in &self.block_fallbacks {
                writeln!(f, "  {reason:<24} {n}")?;
            }
            writeln!(
                f,
                "lockstep horizons: {} stretches covering {} cycles",
                self.block_horizons.0, self.block_horizons.1
            )?;
        }
        if self.fleet != (0, 0, 0) {
            writeln!(
                f,
                "fleet: {} upload(s), {} seed(s), {} error(s)",
                self.fleet.0, self.fleet.1, self.fleet.2
            )?;
        }
        if self.osr != (0, 0, 0) {
            writeln!(
                f,
                "osr: {} migration(s), {} reverse migration(s), {} rejected map(s)",
                self.osr.0, self.osr.1, self.osr.2
            )?;
        }
        Ok(())
    }
}

/// Parse a JSONL trace back into records (inverse of the JSONL sink).
pub fn read_jsonl(reader: impl std::io::Read) -> Result<Vec<TelemetryRecord>, String> {
    let mut out = Vec::new();
    for (lineno, line) in std::io::BufReader::new(reader).lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let value: serde_json::Value =
            serde_json::from_str(&line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let rec =
            serde_json::from_value(&value).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantum(tick: u64) -> TelemetryEvent {
        TelemetryEvent::Quantum {
            tick,
            cycle: tick * 1000,
            samples_forwarded: 4,
            cpus: vec![],
        }
    }

    #[test]
    fn ring_overflow_drops_and_counts() {
        let (sink, log) = TelemetrySink::memory();
        let mut hub = TelemetryHub::new(sink, 4);
        let em = hub.emitter();
        let mut accepted = 0;
        for t in 0..10 {
            if em.emit(quantum(t)) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4, "ring capacity bounds acceptance");
        assert_eq!(em.dropped(), 6);
        assert_eq!(hub.drain(), 4);
        assert_eq!(hub.dropped(), 6);
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 4);
        // The four accepted records kept their emission order.
        let ticks: Vec<u64> = log
            .records()
            .iter()
            .map(|r| match r.event {
                TelemetryEvent::Quantum { tick, .. } => tick,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ticks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn per_thread_emission_order_is_preserved() {
        let (sink, log) = TelemetrySink::memory();
        let mut hub = TelemetryHub::new(sink, 1024);
        let mut joins = Vec::new();
        for cpu in 0..4u32 {
            let em = hub.emitter();
            joins.push(std::thread::spawn(move || {
                for tick in 0..50 {
                    em.emit(TelemetryEvent::UsbLevel {
                        tick,
                        cpu,
                        occupancy: tick as usize,
                        capacity: 64,
                        dropped_total: 0,
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        hub.drain();
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 200);
        // Global seqs are unique; within each emitting thread both seq and
        // payload order are strictly increasing.
        let mut seqs: Vec<u64> = log.records().iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 200);
        for cpu in 0..4u32 {
            let per: Vec<(u64, u64)> = log
                .records()
                .iter()
                .filter_map(|r| match r.event {
                    TelemetryEvent::UsbLevel { tick, cpu: c, .. } if c == cpu => {
                        Some((r.seq, tick))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(per.len(), 50);
            assert!(
                per.windows(2).all(|w| w[0].0 < w[1].0),
                "seq order per thread"
            );
            assert!(
                per.windows(2).all(|w| w[0].1 < w[1].1),
                "payload order per thread"
            );
        }
    }

    #[test]
    fn summary_counts_categories_and_timelines() {
        let records = vec![
            TelemetryRecord {
                seq: 0,
                event: quantum(0),
            },
            TelemetryRecord {
                seq: 1,
                event: TelemetryEvent::Deploy {
                    tick: 3,
                    cycle: 3000,
                    plan_id: 0,
                    kind: OptKind::NoPrefetch,
                    loop_head: 40,
                    words_patched: 3,
                    trace_entry: Some(96),
                },
            },
            TelemetryRecord {
                seq: 2,
                event: TelemetryEvent::Revert {
                    tick: 9,
                    cycle: 9000,
                    plan_id: 0,
                    reason: "CPI regressed".into(),
                },
            },
            TelemetryRecord {
                seq: 3,
                event: TelemetryEvent::PhaseChange {
                    tick: 9,
                    cycle: 9000,
                    phases: 2,
                },
            },
            TelemetryRecord {
                seq: 4,
                event: TelemetryEvent::Detach {
                    tick: 10,
                    cycle: 9900,
                    records_dropped: 7,
                    block_fallback_mem_boundary: 12,
                    block_fallback_sampling: 0,
                    block_fallback_no_running: 0,
                    block_fallback_other: 3,
                    block_horizon_stretches: 5,
                    block_horizon_cycles: 480,
                },
            },
        ];
        let s = TraceSummary::from_records(&records);
        assert_eq!(s.total_records, 5);
        assert_eq!(s.deployments, vec![(3, 0, "noprefetch".to_string(), 40)]);
        assert_eq!(s.reverts.len(), 1);
        assert_eq!(s.phase_changes, 1);
        assert_eq!(s.records_dropped, 7);
        assert_eq!(
            s.block_fallbacks,
            vec![
                ("multi_core_mem_boundary".to_string(), 12),
                ("other".to_string(), 3)
            ],
            "zero reasons are omitted"
        );
        assert_eq!(s.block_horizons, (5, 480));
        let text = format!("{s}");
        assert!(text.contains("deploy"));
        assert!(text.contains("plan 0 noprefetch @ loop 40"));
        assert!(text.contains("multi_core_mem_boundary"));
        assert!(text.contains("5 stretches covering 480 cycles"));
    }

    /// OSR records roll up into the summary's `(migrations, reverse,
    /// rejects)` triple and render one line; summaries serialized before
    /// the field existed still load with zeros.
    #[test]
    fn summary_aggregates_osr_records() {
        let records = vec![
            TelemetryRecord {
                seq: 0,
                event: TelemetryEvent::OsrMigrate {
                    tick: 4,
                    cycle: 4000,
                    plan_id: 0,
                    migrations: 3,
                    ticks_since_deploy: 1,
                },
            },
            TelemetryRecord {
                seq: 1,
                event: TelemetryEvent::OsrRevert {
                    tick: 9,
                    cycle: 9000,
                    plan_id: 0,
                    migrations: 4,
                    ticks_since_revert: 2,
                },
            },
            TelemetryRecord {
                seq: 2,
                event: TelemetryEvent::OsrRejected {
                    tick: 2,
                    cycle: 2000,
                    plan_id: 1,
                    loop_head: 40,
                    reason: "map not total".into(),
                },
            },
        ];
        let s = TraceSummary::from_records(&records);
        assert_eq!(s.osr, (3, 4, 1));
        let text = format!("{s}");
        assert!(
            text.contains("osr: 3 migration(s), 4 reverse migration(s), 1 rejected map(s)"),
            "{text}"
        );

        // Legacy wire shape: a summary without the `osr` field.
        let mut v = serde::Serialize::to_value(&s);
        if let serde::Value::Object(fields) = &mut v {
            fields.retain(|(k, _)| k != "osr");
        } else {
            panic!("summary serializes to an object");
        }
        let back: TraceSummary = serde::Deserialize::from_value(&v).expect("tolerant deserialize");
        assert_eq!(back.osr, (0, 0, 0));
        assert!(
            !format!("{back}").contains("osr:"),
            "zero triple is omitted"
        );
    }

    /// Detach records written before the fallback breakdown existed must
    /// still load (the new fields default to zero).
    #[test]
    fn old_detach_records_without_breakdown_still_load() {
        let rec = TelemetryRecord {
            seq: 0,
            event: TelemetryEvent::Detach {
                tick: 1,
                cycle: 100,
                records_dropped: 2,
                block_fallback_mem_boundary: 0,
                block_fallback_sampling: 0,
                block_fallback_no_running: 0,
                block_fallback_other: 0,
                block_horizon_stretches: 0,
                block_horizon_cycles: 0,
            },
        };
        let mut v = serde::Serialize::to_value(&rec);
        // Strip the new fields to reproduce the legacy wire shape.
        fn strip(v: &mut serde::Value) {
            if let serde::Value::Object(fields) = v {
                fields.retain(|(k, _)| !k.starts_with("block_"));
                for (_, inner) in fields.iter_mut() {
                    strip(inner);
                }
            }
        }
        strip(&mut v);
        let back: TelemetryRecord =
            serde::Deserialize::from_value(&v).expect("tolerant deserialize");
        assert_eq!(back, rec);
        let s = TraceSummary::from_records(&[back]);
        assert!(s.block_fallbacks.is_empty());
        assert_eq!(s.block_horizons, (0, 0));
    }
}
