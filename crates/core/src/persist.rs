//! Bridge between the runtime's in-memory state and `cobra-store`'s
//! plain-field snapshot records.
//!
//! `cobra-store` sits *below* this crate in the dependency graph (it only
//! knows `cobra-isa`/`cobra-machine`), so it mirrors the profile and
//! decision shapes instead of referencing [`SystemProfile`] / `OptKind`
//! directly. This module owns the two-way conversion:
//!
//! * at detach, the optimization thread's [`OptFinal`] becomes a
//!   [`Snapshot`] (sorted, so snapshots serialize deterministically);
//! * at attach, a loaded snapshot becomes a [`WarmSeed`] — only
//!   non-reverted decisions seed deployments; reverted ones travel through
//!   the blacklist so a warm run never re-trials a known regression.

use cobra_store::{
    BranchPairRecord, DecisionRecord, DelinquentRecord, ProfileRecord, Snapshot, StoreKey,
    WinnerRecord,
};

use crate::monitor::OptFinal;
use crate::optimizer::{OptKind, WarmSeed};
use crate::profile::SystemProfile;

/// Flatten a [`SystemProfile`] into a store record (entries sorted by pc /
/// branch pair for deterministic serialization).
pub fn profile_record(profile: &SystemProfile) -> ProfileRecord {
    let w = &profile.window;
    let mut delinquent: Vec<DelinquentRecord> = profile
        .delinquent
        .iter()
        .map(|(&pc, s)| DelinquentRecord {
            pc,
            coherent: s.coherent,
            memory: s.memory,
            total_latency: s.total_latency,
        })
        .collect();
    delinquent.sort_by_key(|d| d.pc);
    let mut branch_pairs: Vec<BranchPairRecord> = profile
        .branch_pairs
        .iter()
        .map(|(&(src, target), &count)| BranchPairRecord { src, target, count })
        .collect();
    branch_pairs.sort_by_key(|p| (p.src, p.target));
    ProfileRecord {
        instructions: w.instructions,
        cycles: w.cycles,
        bus_memory: w.bus_memory,
        bus_coherent: w.bus_coherent,
        l2_miss: w.l2_miss,
        l3_miss: w.l3_miss,
        samples: profile.samples,
        delinquent,
        branch_pairs,
    }
}

/// Build the snapshot one finished run contributes (`runs = 1`; the
/// framework merges it into any prior snapshot before saving).
pub fn snapshot_from_final(key: StoreKey, fin: &OptFinal) -> Snapshot {
    let mut snap = Snapshot::empty(key);
    snap.runs = 1;
    snap.profile = profile_record(&fin.cumulative);
    snap.decisions = fin
        .decisions
        .iter()
        .map(|d| DecisionRecord {
            loop_head: d.loop_head,
            kind: d.kind.name().to_string(),
            reverted: d.reverted,
            baseline_cpi: d.baseline_cpi,
            post_cpi: d.post_cpi,
        })
        .collect();
    // Tournament winners still standing at detach: a warm run resumes these
    // directly instead of re-running the tournament. Decisions are already
    // sorted by loop head, so winners are too.
    snap.winners = fin
        .decisions
        .iter()
        .filter(|d| !d.reverted)
        .filter_map(|d| {
            d.candidate.as_ref().map(|candidate| WinnerRecord {
                loop_head: d.loop_head,
                candidate: candidate.clone(),
                kind: d.kind.name().to_string(),
                trials: d.trials.clone(),
            })
        })
        .collect();
    snap.blacklist = fin.blacklist.clone();
    snap
}

/// Turn a loaded snapshot into optimizer seeds. Decisions whose kind no
/// longer parses are dropped (the store already filters unknown kinds, but
/// defense in depth is free here); reverted decisions become blacklist
/// entries rather than deploy seeds.
pub fn seed_from_snapshot(snap: &Snapshot) -> WarmSeed {
    let mut seed = WarmSeed::default();
    for d in &snap.decisions {
        let Some(kind) = OptKind::from_name(&d.kind) else {
            continue;
        };
        if d.reverted {
            seed.blacklist.push(d.loop_head);
        } else {
            seed.decisions.push((d.loop_head, kind));
        }
    }
    seed.blacklist.extend(snap.blacklist.iter().copied());
    seed.blacklist.sort_unstable();
    seed.blacklist.dedup();
    for w in &snap.winners {
        if !seed.blacklist.contains(&w.loop_head) {
            seed.winners.push((w.loop_head, w.candidate.clone()));
        }
    }
    seed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{CounterWindow, LatencyBands, ProfileDelta};

    #[test]
    fn store_kind_names_match_optkind() {
        // The store validates decision kinds against a string list it owns
        // (it cannot see OptKind); keep the two in lock step.
        for kind in OptKind::ALL {
            assert!(
                cobra_store::KNOWN_KINDS.contains(&kind.name()),
                "store does not know kind {:?}",
                kind.name()
            );
        }
        assert_eq!(cobra_store::KNOWN_KINDS.len(), OptKind::ALL.len());
        for name in cobra_store::KNOWN_KINDS {
            assert!(OptKind::from_name(name).is_some());
        }
    }

    #[test]
    fn profile_record_flattens_sorted() {
        let mut sp = SystemProfile::new(LatencyBands { coherent_min: 165 });
        let mut delta = ProfileDelta {
            samples: 10,
            window: CounterWindow {
                instructions: 1000,
                cycles: 1500,
                bus_memory: 7,
                bus_coherent: 3,
                l2_miss: 5,
                l3_miss: 2,
            },
            ..ProfileDelta::default()
        };
        delta.dear_events.push((90, 0x100, 200));
        delta.dear_events.push((20, 0x200, 200));
        delta.branch_pairs.push((50, 30));
        delta.branch_pairs.push((9, 5));
        sp.absorb(&delta);
        let rec = profile_record(&sp);
        assert_eq!(rec.samples, 10);
        assert_eq!(rec.instructions, 1000);
        let pcs: Vec<u32> = rec.delinquent.iter().map(|d| d.pc).collect();
        assert_eq!(pcs, {
            let mut s = pcs.clone();
            s.sort_unstable();
            s
        });
        assert_eq!(rec.branch_pairs[0].src, 9);
    }

    #[test]
    fn seed_routes_reverted_decisions_to_blacklist() {
        let key = StoreKey {
            image_hash: 1,
            machine_fp: 2,
        };
        let mut snap = Snapshot::empty(key);
        snap.decisions = vec![
            DecisionRecord {
                loop_head: 10,
                kind: "noprefetch".into(),
                reverted: false,
                baseline_cpi: 1.0,
                post_cpi: Some(0.9),
            },
            DecisionRecord {
                loop_head: 20,
                kind: "prefetch.excl".into(),
                reverted: true,
                baseline_cpi: 1.0,
                post_cpi: Some(2.0),
            },
        ];
        snap.blacklist = vec![30, 20];
        let seed = seed_from_snapshot(&snap);
        assert_eq!(seed.decisions, vec![(10, OptKind::NoPrefetch)]);
        assert_eq!(seed.blacklist, vec![20, 30]);
        assert!(seed.winners.is_empty());
    }

    #[test]
    fn winners_round_trip_and_blacklisted_winners_are_dropped() {
        let key = StoreKey {
            image_hash: 1,
            machine_fp: 2,
        };
        let fin = OptFinal {
            decisions: vec![
                crate::optimizer::DecisionExport {
                    loop_head: 10,
                    kind: OptKind::Combined,
                    reverted: false,
                    baseline_cpi: 1.4,
                    post_cpi: Some(1.1),
                    candidate: Some("combined.split".into()),
                    trials: vec![("noprefetch".into(), 1.3), ("combined.split".into(), 1.1)],
                },
                // A reverted tournament winner must not become a seed.
                crate::optimizer::DecisionExport {
                    loop_head: 20,
                    kind: OptKind::NoPrefetch,
                    reverted: true,
                    baseline_cpi: 1.0,
                    post_cpi: Some(2.0),
                    candidate: Some("noprefetch".into()),
                    trials: vec![],
                },
                // Classic deployments export no candidate, hence no winner.
                crate::optimizer::DecisionExport {
                    loop_head: 30,
                    kind: OptKind::ExclHint,
                    reverted: false,
                    baseline_cpi: 1.2,
                    post_cpi: None,
                    candidate: None,
                    trials: vec![],
                },
            ],
            blacklist: vec![20],
            cumulative: SystemProfile::new(LatencyBands { coherent_min: 165 }),
        };
        let snap = snapshot_from_final(key, &fin);
        assert_eq!(snap.winners.len(), 1);
        assert_eq!(snap.winners[0].loop_head, 10);
        assert_eq!(snap.winners[0].kind, "combined");
        let seed = seed_from_snapshot(&snap);
        assert_eq!(seed.winners, vec![(10, "combined.split".to_string())]);
    }
}
