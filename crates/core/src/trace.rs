//! Trace selection: discover hot loops from BTB branch pairs.
//!
//! §3.2/§4: "trace formation and selection algorithms are tuned to discover
//! hot loops and leading execution paths to the loops … using BTB to capture
//! the last 4 taken branches and their target addresses, we could easily
//! discover the loop boundaries to determine the PC addresses having lfetch
//! instruction within the identified boundaries."
//!
//! A backward taken branch `(src, target)` with `target <= src` delimits a
//! loop body `[target, src]`; the pair's occurrence count in the aggregated
//! BTB profile ranks loop hotness. Prefetch discovery also scans a small
//! window *before* the loop head, because icc hoists the initial prefetch
//! burst to the loop's entry point ("prefetch instructions are usually
//! generated inside a loop or the entry point of a loop").

use cobra_isa::{CodeAddr, CodeImage};
use serde::{Deserialize, Serialize};

use crate::profile::SystemProfile;

/// A discovered hot loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotLoop {
    /// First instruction of the loop body (the back edge's target).
    pub head: CodeAddr,
    /// Address of the back-edge branch.
    pub back_edge: CodeAddr,
    /// Occurrences of the back edge in BTB snapshots (hotness).
    pub count: u64,
}

impl HotLoop {
    /// Is `pc` within the loop body?
    pub fn contains(&self, pc: CodeAddr) -> bool {
        pc >= self.head && pc <= self.back_edge
    }

    /// Body length in slots.
    pub fn len(&self) -> u32 {
        self.back_edge - self.head + 1
    }

    /// True only for degenerate zero-length loops (cannot happen for loops
    /// built by [`select_loops`]).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Trace-selection knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Minimum BTB occurrences before a back edge counts as hot.
    pub min_count: u64,
    /// Maximum loop body length to consider (very long "loops" are usually
    /// mispaired branches).
    pub max_body_slots: u32,
    /// Slots scanned before the head for the hoisted prefetch burst.
    pub entry_window_slots: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            min_count: 8,
            max_body_slots: 256,
            entry_window_slots: 24,
        }
    }
}

/// Rank hot loops from the profile's branch pairs, hottest first.
/// Nested duplicates (same head) keep the widest observed body.
pub fn select_loops(profile: &SystemProfile, config: &TraceConfig) -> Vec<HotLoop> {
    let mut by_head: std::collections::HashMap<CodeAddr, HotLoop> =
        std::collections::HashMap::new();
    for (&(src, target), &count) in &profile.branch_pairs {
        if count < config.min_count {
            continue;
        }
        if target > src {
            continue; // forward branch: not a loop back edge
        }
        if src - target + 1 > config.max_body_slots {
            continue;
        }
        let entry = by_head.entry(target).or_insert(HotLoop {
            head: target,
            back_edge: src,
            count: 0,
        });
        entry.count += count;
        entry.back_edge = entry.back_edge.max(src);
    }
    let mut loops: Vec<HotLoop> = by_head.into_values().collect();
    loops.sort_by(|a, b| b.count.cmp(&a.count).then(a.head.cmp(&b.head)));
    loops
}

/// Loops (from `loops`) that contain at least one of the delinquent PCs.
pub fn loops_with_delinquent_loads(loops: &[HotLoop], delinquent_pcs: &[CodeAddr]) -> Vec<HotLoop> {
    loops
        .iter()
        .filter(|l| delinquent_pcs.iter().any(|&pc| l.contains(pc)))
        .cloned()
        .collect()
}

/// Find every `lfetch` belonging to a loop: inside the body plus the
/// hoisted burst in the entry window before the head.
pub fn loop_lfetch_sites(image: &CodeImage, lp: &HotLoop, config: &TraceConfig) -> Vec<CodeAddr> {
    let mut sites = Vec::new();
    let start = lp.head.saturating_sub(config.entry_window_slots);
    for addr in start..=lp.back_edge.min(image.len().saturating_sub(1)) {
        if let Ok(insn) = image.insn(addr) {
            if insn.is_lfetch() {
                sites.push(addr);
            }
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{LatencyBands, ProfileDelta, SystemProfile};
    use cobra_isa::Assembler;

    fn profile_with_pairs(pairs: &[((CodeAddr, CodeAddr), u64)]) -> SystemProfile {
        let mut sp = SystemProfile::new(LatencyBands { coherent_min: 165 });
        let mut delta = ProfileDelta::default();
        for &((src, tgt), n) in pairs {
            for _ in 0..n {
                delta.branch_pairs.push((src, tgt));
            }
        }
        sp.absorb(&delta);
        sp
    }

    #[test]
    fn backward_branches_become_loops_ranked_by_count() {
        let sp = profile_with_pairs(&[((50, 30), 100), ((200, 180), 40), ((10, 90), 500)]);
        let loops = select_loops(
            &sp,
            &TraceConfig {
                min_count: 8,
                ..Default::default()
            },
        );
        // (10, 90) is a forward branch -> excluded despite its count.
        assert_eq!(loops.len(), 2);
        assert_eq!(
            loops[0],
            HotLoop {
                head: 30,
                back_edge: 50,
                count: 100
            }
        );
        assert_eq!(loops[1].head, 180);
        assert!(loops[0].contains(40));
        assert!(!loops[0].contains(51));
        assert_eq!(loops[0].len(), 21);
    }

    #[test]
    fn cold_and_oversized_back_edges_filtered() {
        let sp = profile_with_pairs(&[((50, 30), 3), ((5000, 100), 100)]);
        let cfg = TraceConfig {
            min_count: 8,
            max_body_slots: 256,
            entry_window_slots: 24,
        };
        assert!(select_loops(&sp, &cfg).is_empty());
    }

    #[test]
    fn same_head_merges_to_widest_body() {
        // An inner conditional taken branch and the back edge share a head.
        let sp = profile_with_pairs(&[((50, 30), 60), ((44, 30), 20)]);
        let loops = select_loops(&sp, &TraceConfig::default());
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].back_edge, 50);
        assert_eq!(loops[0].count, 80);
    }

    #[test]
    fn delinquent_filter_selects_owning_loops() {
        let loops = vec![
            HotLoop {
                head: 30,
                back_edge: 50,
                count: 10,
            },
            HotLoop {
                head: 100,
                back_edge: 140,
                count: 9,
            },
        ];
        let hits = loops_with_delinquent_loads(&loops, &[120]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].head, 100);
        assert!(loops_with_delinquent_loads(&loops, &[60]).is_empty());
    }

    #[test]
    fn lfetch_sites_include_entry_burst_and_body() {
        let mut a = Assembler::new();
        // burst (entry window)
        a.lfetch_nt1(0, 10, 128);
        a.lfetch_nt1(0, 10, 128);
        a.align();
        let head = a.here();
        a.ldfd(16, 32, 2, 8);
        a.lfetch_nt1(16, 27, 8);
        a.nop(cobra_isa::Unit::I);
        let back = a.emit(cobra_isa::Insn::new(cobra_isa::insn::Op::BrCtop {
            target: head,
        }));
        a.hlt();
        let image = a.finish();
        let lp = HotLoop {
            head,
            back_edge: back,
            count: 100,
        };
        let sites = loop_lfetch_sites(&image, &lp, &TraceConfig::default());
        assert_eq!(sites.len(), 3, "2 burst + 1 in-loop");
        // Restricting the entry window excludes the burst.
        let sites = loop_lfetch_sites(
            &image,
            &lp,
            &TraceConfig {
                entry_window_slots: 0,
                ..Default::default()
            },
        );
        assert_eq!(sites.len(), 1);
    }
}
