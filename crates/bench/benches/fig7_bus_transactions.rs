//! Figure 7 bench: system-bus memory transactions on the NPB suite under
//! COBRA. Reported "time" is the **bus transaction count** (1 txn = 1 ns).
//! The paper's observation: Figure 7 tracks Figure 6 because L3 misses are
//! serviced by bus transactions.

use cobra_bench::{bench_metric, npb_metrics};
use cobra_kernels::npb;
use cobra_machine::MachineConfig;
use cobra_rt::Strategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig7(c: &mut Criterion) {
    for (cfg, threads) in [
        (MachineConfig::smp4(), 4usize),
        (MachineConfig::altix8(), 8),
    ] {
        for &bench in &npb::Benchmark::COHERENT {
            for (name, strategy) in [
                ("prefetch", None),
                ("noprefetch", Some(Strategy::NoPrefetch)),
                ("prefetch_excl", Some(Strategy::ExclHint)),
            ] {
                let m = npb_metrics(bench, &cfg, threads, strategy);
                bench_metric(
                    c,
                    &format!("fig7/{}/{}", cfg.name, bench.name()),
                    BenchmarkId::from_parameter(name),
                    m.bus_transactions,
                );
            }
        }
    }
}

criterion_group! {
    name = benches;
    // Deterministic replayed metrics have (intentionally) near-zero
    // variance, which the plotting backend rejects; plots add nothing here.
    config = Criterion::default().without_plots();
    targets = fig7
}
criterion_main!(benches);
