//! Figure 6 bench: L3 misses on the NPB suite under COBRA. Reported "time"
//! is the **L3 miss count** (1 miss = 1 ns); compare against the `prefetch`
//! row to read the normalized reductions of Figure 6(a)/(b) — the paper
//! reports up to −29.9 % (SP) and −39.5 % (CG) for noprefetch on the SMP.
//!
//! All grid cells are independent simulations, so they are computed
//! through the parallel trial runner first and then replayed to Criterion
//! in input order.

use cobra_bench::{bench_metric, npb_metrics_grid, NpbJob};
use cobra_kernels::npb;
use cobra_machine::MachineConfig;
use cobra_rt::Strategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig6(c: &mut Criterion) {
    let mut jobs = Vec::new();
    let mut labels = Vec::new();
    for (cfg, threads) in [
        (MachineConfig::smp4(), 4usize),
        (MachineConfig::altix8(), 8),
    ] {
        for &bench in &npb::Benchmark::COHERENT {
            for (name, strategy) in [
                ("prefetch", None),
                ("noprefetch", Some(Strategy::NoPrefetch)),
                ("prefetch_excl", Some(Strategy::ExclHint)),
            ] {
                labels.push((format!("fig6/{}/{}", cfg.name, bench.name()), name));
                jobs.push(NpbJob {
                    cfg: cfg.clone(),
                    threads,
                    bench,
                    strategy,
                });
            }
        }
    }
    let metrics = npb_metrics_grid(&jobs);
    for ((group, name), m) in labels.into_iter().zip(metrics) {
        bench_metric(c, &group, BenchmarkId::from_parameter(name), m.l3_misses);
    }
}

criterion_group! {
    name = benches;
    // Deterministic replayed metrics have (intentionally) near-zero
    // variance, which the plotting backend rejects; plots add nothing here.
    config = Criterion::default().without_plots();
    targets = fig6
}
criterion_main!(benches);
