//! Figure 6 bench: L3 misses on the NPB suite under COBRA. Reported "time"
//! is the **L3 miss count** (1 miss = 1 ns); compare against the `prefetch`
//! row to read the normalized reductions of Figure 6(a)/(b) — the paper
//! reports up to −29.9 % (SP) and −39.5 % (CG) for noprefetch on the SMP.

use cobra_bench::{bench_metric, npb_metrics};
use cobra_kernels::npb;
use cobra_machine::MachineConfig;
use cobra_rt::Strategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig6(c: &mut Criterion) {
    for (cfg, threads) in [
        (MachineConfig::smp4(), 4usize),
        (MachineConfig::altix8(), 8),
    ] {
        for &bench in &npb::Benchmark::COHERENT {
            for (name, strategy) in [
                ("prefetch", None),
                ("noprefetch", Some(Strategy::NoPrefetch)),
                ("prefetch_excl", Some(Strategy::ExclHint)),
            ] {
                let m = npb_metrics(bench, &cfg, threads, strategy);
                bench_metric(
                    c,
                    &format!("fig6/{}/{}", cfg.name, bench.name()),
                    BenchmarkId::from_parameter(name),
                    m.l3_misses,
                );
            }
        }
    }
}

criterion_group! {
    name = benches;
    // Deterministic replayed metrics have (intentionally) near-zero
    // variance, which the plotting backend rejects; plots add nothing here.
    config = Criterion::default().without_plots();
    targets = fig6
}
criterion_main!(benches);
