//! Figure 5 bench: NPB execution time under COBRA, both machines.
//! Reported "time" is simulated cycles (1 cycle = 1 ns); compare the
//! `noprefetch`/`prefetch_excl`/`adaptive` rows against `prefetch` to read
//! the speedups of Figure 5(a)/(b).

use cobra_bench::{bench_metric, npb_metrics};
use cobra_kernels::npb;
use cobra_machine::MachineConfig;
use cobra_rt::Strategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig5(c: &mut Criterion) {
    for (cfg, threads) in [
        (MachineConfig::smp4(), 4usize),
        (MachineConfig::altix8(), 8),
    ] {
        for &bench in &npb::Benchmark::COHERENT {
            for (name, strategy) in [
                ("prefetch", None),
                ("noprefetch", Some(Strategy::NoPrefetch)),
                ("prefetch_excl", Some(Strategy::ExclHint)),
                ("adaptive", Some(Strategy::Adaptive)),
            ] {
                let m = npb_metrics(bench, &cfg, threads, strategy);
                bench_metric(
                    c,
                    &format!("fig5/{}/{}", cfg.name, bench.name()),
                    BenchmarkId::from_parameter(name),
                    m.cycles,
                );
            }
        }
    }
}

criterion_group! {
    name = benches;
    // Deterministic replayed metrics have (intentionally) near-zero
    // variance, which the plotting backend rejects; plots add nothing here.
    config = Criterion::default().without_plots();
    targets = fig5
}
criterion_main!(benches);
