//! Figure 3 bench: steady-state DAXPY cycles under the three static prefetch
//! strategies, for every (working set × thread count) cell of the paper's
//! sweep. Reported "time" is simulated cycles (1 cycle = 1 ns).
//!
//! Expected shape: `noprefetch` fastest at 128K with 2/4 threads (paper:
//! +35 %/+52 %); `prefetch` fastest at 2M with 1 thread; `prefetch.excl`
//! between the two at small working sets.

use cobra_bench::{bench_metric, daxpy_steady_cycles};
use cobra_kernels::PrefetchPolicy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig3(c: &mut Criterion) {
    // A reduced rep count keeps bench setup quick; ratios are stable.
    let reps = 8;
    for (ws, ws_label) in [
        (128 * 1024, "128K"),
        (512 * 1024, "512K"),
        (2 * 1024 * 1024, "2M"),
    ] {
        for threads in [1usize, 2, 4] {
            for (name, policy) in [
                ("prefetch", PrefetchPolicy::aggressive()),
                ("noprefetch", PrefetchPolicy::none()),
                ("prefetch_excl", PrefetchPolicy::aggressive_excl()),
            ] {
                let cycles = daxpy_steady_cycles(ws, threads, &policy, reps);
                bench_metric(
                    c,
                    &format!("fig3/ws={ws_label}/threads={threads}"),
                    BenchmarkId::from_parameter(name),
                    cycles,
                );
            }
        }
    }
}

criterion_group! {
    name = benches;
    // Deterministic replayed metrics have (intentionally) near-zero
    // variance, which the plotting backend rejects; plots add nothing here.
    config = Criterion::default().without_plots();
    targets = fig3
}
criterion_main!(benches);
