//! Table 1 bench: static `lfetch` counts of the NPB binaries, reported as
//! 1 prefetch = 1 ns (the paper's point: hundreds of candidate prefetches
//! per CFD/grid binary make manual tuning infeasible, while EP/IS have
//! almost none). Also measures real codegen wall time per binary.

use cobra_bench::bench_metric;
use cobra_kernels::{npb, PrefetchPolicy};
use cobra_machine::MachineConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn table1(c: &mut Criterion) {
    let cfg = MachineConfig::smp4();
    for &bench in &npb::Benchmark::ALL {
        let wl = npb::build(bench, &PrefetchPolicy::aggressive(), cfg.mem_bytes);
        let lfetch = wl.image().count_matching(|i| i.is_lfetch()) as u64;
        bench_metric(
            c,
            "table1/lfetch_count",
            BenchmarkId::from_parameter(bench.name()),
            lfetch,
        );
    }

    // Real wall time: how fast minicc generates each binary.
    let mut g = c.benchmark_group("table1/codegen_wall_time");
    g.sample_size(10);
    for &bench in &npb::Benchmark::ALL {
        g.bench_function(BenchmarkId::from_parameter(bench.name()), |b| {
            b.iter(|| {
                let wl = npb::build(bench, &PrefetchPolicy::aggressive(), cfg.mem_bytes);
                criterion::black_box(wl.image().len())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Deterministic replayed metrics have (intentionally) near-zero
    // variance, which the plotting backend rejects; plots add nothing here.
    config = Criterion::default().without_plots();
    targets = table1
}
criterion_main!(benches);
