//! Component microbenchmarks (real wall time): the substrate's hot paths.
//!
//! * ISA encode/decode throughput (the binary-rewriting data plane)
//! * cache probe/fill, coherent memory-system accesses
//! * whole-machine stepping (simulation throughput in core-cycles/s)
//! * trace selection + optimizer decision latency (COBRA's reaction time)

use cobra_bench::bench_metric;
use cobra_isa::insn::{CmpRel, Op};
use cobra_isa::{decode, encode, Assembler, Insn, LfetchHint};
use cobra_kernels::workload::Workload;
use cobra_kernels::{Daxpy, DaxpyParams, PrefetchPolicy};
use cobra_machine::{
    AccessKind, CpuStats, Event, HostAccel, Hpm, Machine, MachineConfig, MemSystem, SamplingConfig,
};
use cobra_omp::{OmpRuntime, Team};
use cobra_osr::OsrMap;
use cobra_rt::{
    select_loops, verify_plan, Cobra, DeployMode, LatencyBands, Optimizer, OptimizerConfig,
    PatchPlan, PlanAction, ProfileDelta, Strategy, SystemProfile, TelemetryEvent, TelemetryHub,
    TelemetrySink, TraceConfig,
};
use cobra_verify::check_osr_map;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_isa(c: &mut Criterion) {
    let insn = Insn::pred(
        16,
        Op::Lfetch {
            base: 43,
            post_inc: 8,
            hint: LfetchHint::Nt1,
            excl: false,
        },
    );
    let word = encode(&insn);
    c.bench_function("components/isa/encode", |b| {
        b.iter(|| encode(criterion::black_box(&insn)))
    });
    c.bench_function("components/isa/decode", |b| {
        b.iter(|| decode(criterion::black_box(word)).unwrap())
    });
}

fn bench_memsys(c: &mut Criterion) {
    let cfg = MachineConfig::smp4();
    c.bench_function("components/memsys/l2_hit_load", |b| {
        let mut ms = MemSystem::new(&cfg);
        let mut stats: Vec<CpuStats> = (0..4).map(|_| CpuStats::new()).collect();
        let mut hpm: Vec<Hpm> = (0..4).map(|_| Hpm::new(cfg.dear_min_latency)).collect();
        // Warm one line.
        ms.access(
            &mut stats,
            &mut hpm,
            0,
            0,
            1,
            AccessKind::Load {
                fp: true,
                bias: false,
            },
            0x1000,
        );
        let mut now = 1000u64;
        b.iter(|| {
            now += 1;
            ms.access(
                &mut stats,
                &mut hpm,
                0,
                now,
                1,
                AccessKind::Load {
                    fp: true,
                    bias: false,
                },
                0x1000,
            )
        })
    });
    c.bench_function("components/memsys/coherent_pingpong", |b| {
        let mut ms = MemSystem::new(&cfg);
        let mut stats: Vec<CpuStats> = (0..4).map(|_| CpuStats::new()).collect();
        let mut hpm: Vec<Hpm> = (0..4).map(|_| Hpm::new(cfg.dear_min_latency)).collect();
        let mut now = 0u64;
        b.iter(|| {
            now += 500;
            ms.access(&mut stats, &mut hpm, 0, now, 1, AccessKind::Store, 0x2000);
            ms.access(
                &mut stats,
                &mut hpm,
                1,
                now + 250,
                1,
                AccessKind::Store,
                0x2000,
            )
        })
    });
}

fn bench_memsys_fastpath(c: &mut Criterion) {
    let load = AccessKind::Load {
        fp: true,
        bias: false,
    };

    // Private-hit cost: repeated loads to a line this CPU already holds in
    // E/M — the case the MRU filter answers without touching the
    // probe/effects/snoop machinery. The reference path is measured
    // alongside; the fast path must clear 1.5x before anything is timed by
    // Criterion, and both passes must agree on outcomes and counters.
    let private_hit_pass = |fast: bool, n: u64| {
        let cfg = MachineConfig::smp4().with_host_accel(HostAccel::fast().with_mem_fast_path(fast));
        let mut ms = MemSystem::new(&cfg);
        let mut stats: Vec<CpuStats> = (0..4).map(|_| CpuStats::new()).collect();
        let mut hpm: Vec<Hpm> = (0..4).map(|_| Hpm::new(cfg.dear_min_latency)).collect();
        ms.access(&mut stats, &mut hpm, 0, 0, 1, load, 0x1000);
        let mut now = 1_000u64;
        let mut digest = 0u64;
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            now += 1;
            let out = ms.access(&mut stats, &mut hpm, 0, now, 1, load, 0x1000);
            digest ^= out
                .complete_at
                .wrapping_mul(3)
                .wrapping_add(out.stall_until);
        }
        (t0.elapsed(), digest, stats[0].clone())
    };
    const HITS: u64 = 1_000_000;
    let (ref_elapsed, ref_digest, ref_stats) = (0..3)
        .map(|_| private_hit_pass(false, HITS))
        .min_by_key(|(d, _, _)| *d)
        .unwrap();
    let (fast_elapsed, fast_digest, fast_stats) = (0..3)
        .map(|_| private_hit_pass(true, HITS))
        .min_by_key(|(d, _, _)| *d)
        .unwrap();
    assert_eq!(
        (ref_digest, ref_stats),
        (fast_digest, fast_stats),
        "fast path must answer private hits identically to the reference"
    );
    let ratio = ref_elapsed.as_secs_f64() / fast_elapsed.as_secs_f64();
    assert!(
        ratio >= 1.5,
        "private-hit fast path must be >= 1.5x the reference, got {ratio:.2}x \
         ({ref_elapsed:?} reference vs {fast_elapsed:?} fast)"
    );
    let mut g = c.benchmark_group("components/memsys/private_hit_load");
    for (variant, fast) in [("reference", false), ("fast_path", true)] {
        g.bench_function(BenchmarkId::from_parameter(variant), |b| {
            let cfg =
                MachineConfig::smp4().with_host_accel(HostAccel::fast().with_mem_fast_path(fast));
            let mut ms = MemSystem::new(&cfg);
            let mut stats: Vec<CpuStats> = (0..4).map(|_| CpuStats::new()).collect();
            let mut hpm: Vec<Hpm> = (0..4).map(|_| Hpm::new(cfg.dear_min_latency)).collect();
            ms.access(&mut stats, &mut hpm, 0, 0, 1, load, 0x1000);
            let mut now = 1_000u64;
            b.iter(|| {
                now += 1;
                ms.access(&mut stats, &mut hpm, 0, now, 1, load, 0x1000)
            })
        });
    }
    g.finish();

    // Snoop-miss cost: a cold-line load stream where no other hierarchy can
    // hold the line, so the presence vector lets the fast path skip the
    // O(num_cpus) snoop loops that the reference walks on every miss.
    let snoop_miss_pass = |fast: bool, n: u64| {
        let cfg = MachineConfig::smp4().with_host_accel(HostAccel::fast().with_mem_fast_path(fast));
        let mut ms = MemSystem::new(&cfg);
        let mut stats: Vec<CpuStats> = (0..4).map(|_| CpuStats::new()).collect();
        let mut hpm: Vec<Hpm> = (0..4).map(|_| Hpm::new(cfg.dear_min_latency)).collect();
        let mut now = 0u64;
        let mut digest = 0u64;
        let t0 = std::time::Instant::now();
        for i in 0..n {
            now += 600;
            let addr = 0x1000 + (i % 300_000) * 128;
            let out = ms.access(&mut stats, &mut hpm, 0, now, 1, load, addr);
            digest ^= out
                .complete_at
                .wrapping_mul(3)
                .wrapping_add(out.stall_until);
        }
        (t0.elapsed(), digest, stats[0].clone())
    };
    const MISSES: u64 = 300_000;
    let (miss_ref_elapsed, miss_ref_digest, miss_ref_stats) = (0..3)
        .map(|_| snoop_miss_pass(false, MISSES))
        .min_by_key(|(d, _, _)| *d)
        .unwrap();
    let (miss_fast_elapsed, miss_fast_digest, miss_fast_stats) = (0..3)
        .map(|_| snoop_miss_pass(true, MISSES))
        .min_by_key(|(d, _, _)| *d)
        .unwrap();
    assert_eq!(
        (miss_ref_digest, miss_ref_stats),
        (miss_fast_digest, miss_fast_stats),
        "presence-vector snoop skip must not change miss handling"
    );
    assert!(
        miss_fast_elapsed.as_secs_f64() <= miss_ref_elapsed.as_secs_f64() * 1.10,
        "snoop skip must not slow down the miss path: {miss_ref_elapsed:?} reference \
         vs {miss_fast_elapsed:?} fast"
    );
    let mut g = c.benchmark_group("components/memsys/snoop_miss_load");
    for (variant, fast) in [("reference", false), ("fast_path", true)] {
        g.bench_function(BenchmarkId::from_parameter(variant), |b| {
            let cfg =
                MachineConfig::smp4().with_host_accel(HostAccel::fast().with_mem_fast_path(fast));
            let mut ms = MemSystem::new(&cfg);
            let mut stats: Vec<CpuStats> = (0..4).map(|_| CpuStats::new()).collect();
            let mut hpm: Vec<Hpm> = (0..4).map(|_| Hpm::new(cfg.dear_min_latency)).collect();
            let mut now = 0u64;
            let mut i = 0u64;
            b.iter(|| {
                now += 600;
                i += 1;
                let addr = 0x1000 + (i % 300_000) * 128;
                ms.access(&mut stats, &mut hpm, 0, now, 1, load, addr)
            })
        });
    }
    g.finish();
}

/// 4-core arithmetic loop image: the cheapest busy workload a quantum can
/// carry (used as the simulation-throughput fixture and as the quantum
/// floor in the verify-overhead budget).
fn arith_loop_image() -> cobra_isa::CodeImage {
    let mut a = Assembler::new();
    a.movi(4, 1_000_000_000);
    a.mov_to_lc(4);
    let top = a.new_label();
    a.bind(top);
    a.addi(5, 5, 1);
    a.emit(Insn::new(Op::Add {
        dest: 6,
        r2: 6,
        r3: 5,
    }));
    a.br_cloop(top);
    a.hlt();
    a.finish()
}

fn bench_machine_stepping(c: &mut Criterion) {
    // Simulation throughput: 4 cores running an arithmetic loop.
    let image = arith_loop_image();
    c.bench_function("components/machine/step_4_cores_1k_cycles", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(MachineConfig::smp4(), image.clone());
                for cpu in 0..4 {
                    m.spawn_thread(cpu, 0, &[]);
                }
                m
            },
            |mut m| {
                m.run_quantum(1000);
                m
            },
            BatchSize::SmallInput,
        )
    });

    // Stall-heavy throughput: a line-striding FP load (one 128-byte line per
    // iteration, so every load misses to memory) feeding an immediate use,
    // which parks all four cores in long all-stalled windows. This is the
    // case the stall-skip fast path exists for; the per-cycle reference is
    // benchmarked alongside it so the speedup is visible in the report. Both
    // configurations must simulate the exact same machine — asserted below
    // before anything is timed.
    let stall_image = {
        let mut a = Assembler::new();
        a.movi(4, 0x1000);
        a.movi(5, 100_000);
        a.mov_to_lc(5);
        let top = a.new_label();
        a.bind(top);
        a.ldfd(0, 6, 4, 128);
        a.fma_d(0, 7, 6, 1, 7); // immediate use: full load-use stall
        a.br_cloop(top);
        a.hlt();
        a.finish()
    };
    let run_stall_heavy = |stall_skip: bool, mem_fast_path: bool| {
        let cfg = MachineConfig::smp4().with_host_accel(
            HostAccel::fast()
                .with_stall_skip(stall_skip)
                .with_mem_fast_path(mem_fast_path),
        );
        let mut m = Machine::new(cfg, stall_image.clone());
        for cpu in 0..4 {
            m.spawn_thread(cpu, 0, &[]);
        }
        m.run_quantum(200_000);
        m
    };
    let reference = run_stall_heavy(false, true);
    let fast = run_stall_heavy(true, true);
    let mem_ref = run_stall_heavy(true, false);
    assert_eq!(
        (reference.cycle(), reference.total_stats()),
        (fast.cycle(), fast.total_stats()),
        "stall-skip fast path must be cycle- and counter-identical"
    );
    assert_eq!(
        (mem_ref.cycle(), mem_ref.total_stats()),
        (fast.cycle(), fast.total_stats()),
        "memory fast path must be cycle- and counter-identical"
    );
    let mut group = c.benchmark_group("components/machine/stall_heavy_200k_cycles");
    for (variant, stall_skip, mem_fast_path) in [
        ("per_cycle", false, true),
        ("stall_skip", true, true),
        ("stall_skip_memref", true, false),
    ] {
        group.bench_function(BenchmarkId::from_parameter(variant), |b| {
            b.iter(|| {
                run_stall_heavy(
                    criterion::black_box(stall_skip),
                    criterion::black_box(mem_fast_path),
                )
            })
        });
    }
    group.finish();
}

/// Shared fixture for the optimizer benches: a 32-loop image with
/// prefetching bodies plus a hot profile that makes every loop a candidate.
fn decision_inputs() -> (cobra_isa::CodeImage, SystemProfile) {
    let image = {
        let mut a = Assembler::new();
        for _ in 0..32 {
            let top = a.new_label();
            a.bind(top);
            a.ldfd(16, 32, 2, 8);
            a.lfetch_nt1(16, 27, 8);
            a.emit(Insn::new(Op::Cmp {
                p1: 6,
                p2: 7,
                rel: CmpRel::Lt,
                r2: 1,
                r3: 2,
            }));
            a.br_ctop(top);
        }
        a.hlt();
        a.finish()
    };
    let bands = LatencyBands { coherent_min: 165 };
    let mut profile = SystemProfile::new(bands);
    let mut delta = ProfileDelta {
        samples: 500,
        ..ProfileDelta::default()
    };
    delta.window.instructions = 1_000_000;
    delta.window.cycles = 1_500_000;
    delta.window.bus_memory = 10_000;
    delta.window.bus_coherent = 4_000;
    for head in (0..32u32).map(|k| k * 12) {
        for _ in 0..20 {
            delta.branch_pairs.push((head + 9, head));
            delta
                .dear_events
                .push((head + 3, 0x1000 + head as u64 * 128, 200));
        }
    }
    profile.absorb(&delta);
    (image, profile)
}

/// Pre-decoded block dispatch: the solo-core fast path must clear 1.5x over
/// the per-cycle reference stepper (it targets ~5x) on the arithmetic-loop
/// fixture, and the two runs must be bit-identical — cycle count, every
/// event counter, and the architectural registers the loop touches.
fn bench_block_dispatch(c: &mut Criterion) {
    let image = arith_loop_image();
    const CYCLES: u64 = 2_000_000;
    let dispatch_pass = |block: bool| {
        let cfg =
            MachineConfig::smp4().with_host_accel(HostAccel::fast().with_block_dispatch(block));
        let mut m = Machine::new(cfg, image.clone());
        m.spawn_thread(0, 0, &[]);
        let t0 = std::time::Instant::now();
        m.run_quantum(CYCLES);
        let elapsed = t0.elapsed();
        let core = m.core(0);
        let state = (m.cycle(), m.total_stats(), core.pc, core.gr(5), core.gr(6));
        (elapsed, state)
    };
    let (ref_elapsed, ref_state) = (0..3)
        .map(|_| dispatch_pass(false))
        .min_by_key(|(d, _)| *d)
        .unwrap();
    let (blk_elapsed, blk_state) = (0..3)
        .map(|_| dispatch_pass(true))
        .min_by_key(|(d, _)| *d)
        .unwrap();
    assert_eq!(
        ref_state, blk_state,
        "block dispatch must be bit-identical to the per-cycle reference"
    );
    let ratio = ref_elapsed.as_secs_f64() / blk_elapsed.as_secs_f64();
    assert!(
        ratio >= 1.5,
        "block dispatch must be >= 1.5x the per-cycle reference, got {ratio:.2}x          ({ref_elapsed:?} reference vs {blk_elapsed:?} block)"
    );
    eprintln!("block dispatch: {ratio:.2}x ({ref_elapsed:?} per-cycle vs {blk_elapsed:?} block)");
    bench_metric(
        c,
        "components/machine",
        BenchmarkId::new("block_dispatch_speedup", "x1000"),
        (ratio * 1000.0) as u64,
    );
    let mut g = c.benchmark_group("components/machine/block_dispatch_2m_cycles");
    for (variant, block) in [("per_cycle", false), ("block_dispatch", true)] {
        g.bench_function(BenchmarkId::from_parameter(variant), |b| {
            b.iter(|| dispatch_pass(criterion::black_box(block)))
        });
    }
    g.finish();
}

/// Lockstep multicore block dispatch: with all four cores running the
/// arithmetic loop, the safe-horizon engine must clear 2x over the same
/// block engine with the lockstep switch off (which falls back to per-cycle
/// interleaving whenever more than one core runs), and the two runs must be
/// bit-identical — cycle count, every event counter, and each core's
/// architectural state.
fn bench_multicore_dispatch(c: &mut Criterion) {
    // Independent add chains: a full-width (3 uops/cycle) arithmetic body,
    // the regime optimized loop code runs in between memory operations.
    let image = {
        let mut a = Assembler::new();
        a.movi(4, 1_000_000_000);
        a.mov_to_lc(4);
        let top = a.new_label();
        a.bind(top);
        for r in 5..11 {
            a.addi(r, r, 1);
        }
        a.br_cloop(top);
        a.hlt();
        a.finish()
    };
    const CYCLES: u64 = 1_000_000;
    let dispatch_pass = |lockstep: bool| {
        let cfg = MachineConfig::smp4()
            .with_host_accel(HostAccel::fast().with_block_dispatch_multicore(lockstep));
        let mut m = Machine::new(cfg, image.clone());
        for cpu in 0..4 {
            // Sampling stays programmed on every CPU, as the perfmon driver
            // leaves it during attached runs: the interleaved loop polls for
            // overflow on each core every cycle, while lockstep stretches are
            // capped by the sampling gate and poll once per stretch.
            m.shared.hpm[cpu].program_sampling(
                SamplingConfig {
                    event: Event::InstRetired,
                    period: 2000,
                },
                0,
            );
            m.spawn_thread(cpu, 0, &[]);
        }
        let t0 = std::time::Instant::now();
        m.run_quantum(CYCLES);
        let elapsed = t0.elapsed();
        let cores: Vec<_> = (0..4)
            .map(|cpu| {
                let core = m.core(cpu);
                (core.pc, core.gr(5), core.gr(6))
            })
            .collect();
        let overflows: Vec<_> = (0..4)
            .map(|cpu| m.shared.hpm[cpu].take_overflows())
            .collect();
        let state = (m.cycle(), m.total_stats(), cores, overflows);
        (elapsed, state)
    };
    // Alternate the variants and keep the per-variant minimum: host load
    // spikes then have to hit all five of one variant's runs to skew the
    // ratio, instead of one unlucky back-to-back group.
    let mut best: [Option<(std::time::Duration, _)>; 2] = [None, None];
    for _ in 0..5 {
        for (slot, lockstep) in [(0usize, false), (1usize, true)] {
            let (elapsed, state) = dispatch_pass(lockstep);
            if let Some((prev_elapsed, prev_state)) = &best[slot] {
                assert_eq!(prev_state, &state, "dispatch runs must be deterministic");
                if elapsed >= *prev_elapsed {
                    continue;
                }
            }
            best[slot] = Some((elapsed, state));
        }
    }
    let [Some((ref_elapsed, ref_state)), Some((lock_elapsed, lock_state))] = best else {
        unreachable!()
    };
    assert_eq!(
        ref_state, lock_state,
        "lockstep dispatch must be bit-identical to per-cycle interleaving"
    );
    let ratio = ref_elapsed.as_secs_f64() / lock_elapsed.as_secs_f64();
    assert!(
        ratio >= 2.0,
        "lockstep multicore dispatch must be >= 2x the per-cycle interleave, got {ratio:.2}x \
         ({ref_elapsed:?} interleaved vs {lock_elapsed:?} lockstep)"
    );
    eprintln!(
        "multicore lockstep dispatch: {ratio:.2}x ({ref_elapsed:?} interleaved vs \
         {lock_elapsed:?} lockstep)"
    );
    bench_metric(
        c,
        "components/machine",
        BenchmarkId::new("multicore_dispatch_speedup", "x1000"),
        (ratio * 1000.0) as u64,
    );
    let mut g = c.benchmark_group("components/machine/multicore_dispatch_1m_cycles");
    for (variant, lockstep) in [("interleaved", false), ("lockstep", true)] {
        g.bench_function(BenchmarkId::from_parameter(variant), |b| {
            b.iter(|| dispatch_pass(criterion::black_box(lockstep)))
        });
    }
    g.finish();
}

fn bench_cobra_decision(c: &mut Criterion) {
    // COBRA's reaction time: trace selection + a full optimizer pass over a
    // profile with many branch pairs and delinquent loads.
    let (image, profile) = decision_inputs();

    c.bench_function("components/cobra/trace_selection", |b| {
        b.iter(|| select_loops(criterion::black_box(&profile), &TraceConfig::default()))
    });
    c.bench_function("components/cobra/optimizer_full_pass", |b| {
        b.iter_batched(
            || {
                Optimizer::new(
                    OptimizerConfig {
                        warmup_ticks: 0,
                        ..Default::default()
                    },
                    image.clone(),
                )
            },
            |mut opt| opt.consider(criterion::black_box(&profile)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_verify_overhead(c: &mut Criterion) {
    // The patch-safety gate runs once per deployment, i.e. once per monitor
    // quantum at most. Prove it costs <5% of a deployment tick, where a
    // tick is what the runtime actually pays per quantum: simulating the
    // quantum (floored by the cheapest busy workload — anything realistic
    // is slower) plus the plan-emitting optimizer pass. Both sides are
    // min-of-N wall time; the verification side re-checks every plan the
    // fixture tick emits.
    let (image, profile) = decision_inputs();
    let cfg = |verify: bool| OptimizerConfig {
        warmup_ticks: 0,
        deploy: DeployMode::InPlace,
        verify,
        ..Default::default()
    };
    let mut opt = Optimizer::new(cfg(true), image.clone());
    let window = opt.config().trace.entry_window_slots;
    let plans: Vec<PatchPlan> = opt
        .consider(&profile)
        .into_iter()
        .filter_map(|a| match a {
            PlanAction::Apply(p) => Some(p),
            PlanAction::Revert { .. } => None,
        })
        .collect();
    assert!(!plans.is_empty(), "fixture tick must emit plans");
    assert_eq!(opt.verify_rejects(), 0, "fixture plans must verify");

    fn min_ns(reps: usize, mut f: impl FnMut()) -> u64 {
        (0..reps)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed().as_nanos() as u64
            })
            .min()
            .unwrap()
            .max(1)
    }
    let consider_ns = min_ns(30, || {
        let mut opt = Optimizer::new(cfg(false), image.clone());
        criterion::black_box(opt.consider(criterion::black_box(&profile)));
    });
    // Quantum floor: 4 cores of pure arithmetic for the default 20k-cycle
    // monitor quantum. Every rep continues the same long-running loop, so
    // each times a fully busy quantum.
    let mut m = Machine::new(MachineConfig::smp4(), arith_loop_image());
    for cpu in 0..4 {
        m.spawn_thread(cpu, 0, &[]);
    }
    let quantum_ns = min_ns(5, || {
        criterion::black_box(m.run_quantum(20_000));
    });
    let tick_ns = quantum_ns + consider_ns;
    let verify_ns = min_ns(100, || {
        for p in &plans {
            verify_plan(
                criterion::black_box(&image),
                criterion::black_box(p),
                window,
            )
            .expect("captured plan verifies");
        }
    });
    assert!(
        verify_ns as f64 <= tick_ns as f64 * 0.05,
        "verification must add <5% to a deployment tick: \
         tick {tick_ns} ns (quantum {quantum_ns} + optimizer {consider_ns}), \
         verify {verify_ns} ns ({} plans)",
        plans.len()
    );
    bench_metric(
        c,
        "components/verify",
        BenchmarkId::new("overhead_ns", "deploy_tick"),
        tick_ns,
    );
    bench_metric(
        c,
        "components/verify",
        BenchmarkId::new("overhead_ns", "optimizer_pass"),
        consider_ns,
    );
    bench_metric(
        c,
        "components/verify",
        BenchmarkId::new("overhead_ns", "verify_all_plans"),
        verify_ns,
    );

    c.bench_function("components/verify/plan_check", |b| {
        b.iter(|| {
            for p in &plans {
                criterion::black_box(
                    verify_plan(
                        criterion::black_box(&image),
                        criterion::black_box(p),
                        window,
                    )
                    .is_ok(),
                );
            }
        })
    });
}

fn bench_osr_overhead(c: &mut Criterion) {
    // OSR's control plane runs once per trace deployment: build the state
    // mapping, verify it, arm the redirect table (and disarm it once the
    // watch converges). Its data plane is one redirect-table lookup per
    // taken branch while a watch is armed. Prove the whole mechanism —
    // control plane over every plan the fixture tick emits, plus the armed
    // quantum's lookup delta — adds <5% to a deployment tick (quantum +
    // optimizer pass, as in the verify-overhead budget).
    let (image, profile) = decision_inputs();
    let mut opt = Optimizer::new(
        OptimizerConfig {
            warmup_ticks: 0,
            deploy: DeployMode::TraceCache,
            ..Default::default()
        },
        image.clone(),
    );
    let plans: Vec<PatchPlan> = opt
        .consider(&profile)
        .into_iter()
        .filter_map(|a| match a {
            PlanAction::Apply(p) if p.trace.is_some() => Some(p),
            _ => None,
        })
        .collect();
    assert!(!plans.is_empty(), "fixture tick must emit trace plans");

    fn min_ns(reps: usize, mut f: impl FnMut()) -> u64 {
        (0..reps)
            .map(|_| {
                let t = std::time::Instant::now();
                f();
                t.elapsed().as_nanos() as u64
            })
            .min()
            .unwrap()
            .max(1)
    }
    let consider_ns = min_ns(30, || {
        let mut opt = Optimizer::new(
            OptimizerConfig {
                warmup_ticks: 0,
                deploy: DeployMode::TraceCache,
                verify: false,
                ..Default::default()
            },
            image.clone(),
        );
        criterion::black_box(opt.consider(criterion::black_box(&profile)));
    });
    let mut m = Machine::new(MachineConfig::smp4(), arith_loop_image());
    for cpu in 0..4 {
        m.spawn_thread(cpu, 0, &[]);
    }
    let quantum_ns = min_ns(5, || {
        criterion::black_box(m.run_quantum(20_000));
    });
    let tick_ns = quantum_ns + consider_ns;

    // Control plane: map + verification + arm/disarm for every plan.
    let mut arm_machine = Machine::new(MachineConfig::smp4(), image.clone());
    let control_ns = min_ns(100, || {
        for p in &plans {
            let t = p.trace.as_ref().unwrap();
            let map = OsrMap::for_trace(p.id, p.loop_head, p.back_edge, t.expected_start);
            check_osr_map(
                criterion::black_box(&image),
                criterion::black_box(&map),
                p.kind.into(),
                &t.insns,
            )
            .expect("captured plan's map verifies");
            arm_machine.arm_redirect(p.id, &map.redirect_pairs());
            criterion::black_box(arm_machine.disarm_redirect(p.id));
        }
    });

    // Data plane: per-branch lookup cost while armed, as the delta between
    // an armed and an unarmed solo quantum on the same block-dispatch
    // engine (the armed edges point outside the loop, so control flow —
    // and thus the work simulated — is identical).
    let mut solo = Machine::new(MachineConfig::smp4(), arith_loop_image());
    solo.spawn_thread(0, 0, &[]);
    let solo_ns = min_ns(5, || {
        criterion::black_box(solo.run_quantum(20_000));
    });
    solo.arm_redirect(u64::MAX, &[(0x00f0_0000, 0x00f0_0010)]);
    let armed_ns = min_ns(5, || {
        criterion::black_box(solo.run_quantum(20_000));
    });
    assert_eq!(solo.disarm_redirect(u64::MAX), 0, "sentinel edge never hit");
    let lookup_delta_ns = armed_ns.saturating_sub(solo_ns);

    let osr_ns = control_ns + lookup_delta_ns;
    assert!(
        osr_ns as f64 <= tick_ns as f64 * 0.05,
        "OSR migration must add <5% to a deployment tick: \
         tick {tick_ns} ns (quantum {quantum_ns} + optimizer {consider_ns}), \
         osr {osr_ns} ns (control {control_ns} + armed lookup delta \
         {lookup_delta_ns}, {} plans)",
        plans.len()
    );
    bench_metric(
        c,
        "components/osr",
        BenchmarkId::new("overhead_ns", "deploy_tick"),
        tick_ns,
    );
    bench_metric(
        c,
        "components/osr",
        BenchmarkId::new("overhead_ns", "control_plane"),
        control_ns,
    );
    bench_metric(
        c,
        "components/osr",
        BenchmarkId::new("overhead_ns", "armed_lookup_delta"),
        lookup_delta_ns,
    );

    c.bench_function("components/osr/map_build_and_check", |b| {
        b.iter(|| {
            for p in &plans {
                let t = p.trace.as_ref().unwrap();
                let map = OsrMap::for_trace(p.id, p.loop_head, p.back_edge, t.expected_start);
                criterion::black_box(
                    check_osr_map(criterion::black_box(&image), &map, p.kind.into(), &t.insns)
                        .is_ok(),
                );
            }
        })
    });
}

fn bench_telemetry(c: &mut Criterion) {
    // Hot-path cost of one emit (+ its share of the periodic drain into a
    // JSONL sink that discards the bytes). This is what monitoring threads
    // pay per event.
    c.bench_function("components/telemetry/emit_and_drain", |b| {
        let sink = TelemetrySink::jsonl(Box::new(std::io::sink()));
        let mut hub = TelemetryHub::new(sink, 4096);
        let emitter = hub.emitter();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            emitter.emit(criterion::black_box(TelemetryEvent::UsbLevel {
                tick: i,
                cpu: 0,
                occupancy: 3,
                capacity: 8192,
                dropped_total: 0,
            }));
            if i.is_multiple_of(1024) {
                hub.drain();
            }
        })
    });

    // End-to-end guard: the telemetry-enabled DAXPY run must stay within
    // 5% of the disabled one (the simulated-cycle cost of emitting and
    // draining the whole pipeline's events). Both totals are reported as
    // metrics so the comparison is visible in the bench output.
    fn daxpy_cycles(telemetry: bool) -> u64 {
        let cfg = MachineConfig::smp4();
        let wl = Daxpy::build(
            DaxpyParams::new(128 * 1024, 24),
            &PrefetchPolicy::aggressive(),
            cfg.mem_bytes,
        );
        let mut m = Machine::new(cfg.clone(), wl.image().clone());
        wl.init(&mut m.shared.mem);
        let mut builder = Cobra::builder().strategy(Strategy::NoPrefetch);
        if telemetry {
            let (sink, _log) = TelemetrySink::memory();
            builder = builder.telemetry(sink);
        }
        let mut cobra = builder.attach(&mut m);
        let rt = OmpRuntime {
            quantum: 20_000,
            ..OmpRuntime::default()
        };
        let run = wl.run(&mut m, Team::new(4), &rt, &mut cobra);
        cobra.detach(&mut m);
        run.cycles
    }
    let disabled = daxpy_cycles(false);
    let enabled = daxpy_cycles(true);
    assert!(
        enabled as f64 <= disabled as f64 * 1.05,
        "telemetry-enabled DAXPY must stay within 5%: {disabled} vs {enabled}"
    );
    bench_metric(
        c,
        "components/telemetry",
        BenchmarkId::new("daxpy_cycles", "disabled"),
        disabled,
    );
    bench_metric(
        c,
        "components/telemetry",
        BenchmarkId::new("daxpy_cycles", "enabled"),
        enabled,
    );
}

criterion_group!(
    benches,
    bench_isa,
    bench_memsys,
    bench_memsys_fastpath,
    bench_machine_stepping,
    bench_block_dispatch,
    bench_multicore_dispatch,
    bench_cobra_decision,
    bench_verify_overhead,
    bench_osr_overhead,
    bench_telemetry
);
criterion_main!(benches);
