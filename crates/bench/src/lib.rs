//! Shared plumbing for the Criterion benches that regenerate the paper's
//! tables and figures.
//!
//! The simulator is fully deterministic, so each configuration is executed
//! **once** and its simulated metric is replayed to Criterion through
//! `iter_custom` (1 simulated cycle — or 1 counted event — is reported as
//! 1 ns). Criterion then renders the same rows/series the paper's figures
//! plot, with exact, zero-variance values, while `benches/components.rs`
//! measures real wall time of the substrate's hot paths.

use std::time::Duration;

use cobra_kernels::workload::execute_plain;
use cobra_kernels::{npb, Daxpy, DaxpyParams, PrefetchPolicy};
use cobra_machine::{Event, Machine, MachineConfig};
use cobra_omp::{OmpRuntime, Team};
use cobra_rt::{Cobra, Strategy};
use criterion::{BenchmarkId, Criterion};

/// Simulated metrics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimMetrics {
    pub cycles: u64,
    pub l3_misses: u64,
    pub bus_transactions: u64,
}

/// One cell of an NPB figure grid (machine × benchmark × strategy arm).
#[derive(Debug, Clone)]
pub struct NpbJob {
    pub cfg: MachineConfig,
    pub threads: usize,
    pub bench: npb::Benchmark,
    pub strategy: Option<Strategy>,
}

/// Compute a whole figure grid through the deterministic parallel trial
/// runner. Results come back in input order, and the first cell is re-run
/// sequentially afterwards to assert the fan-out changed nothing — each
/// trial builds its own `Machine`, so parallel and sequential runs are
/// bit-identical by construction.
pub fn npb_metrics_grid(jobs: &[NpbJob]) -> Vec<SimMetrics> {
    let out: Vec<SimMetrics> =
        cobra_harness::run_trials(jobs, cobra_harness::default_workers(), |j| {
            npb_metrics(j.bench, &j.cfg, j.threads, j.strategy)
        })
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("{e}")))
        .collect();
    if let (Some(j), Some(got)) = (jobs.first(), out.first()) {
        let seq = npb_metrics(j.bench, &j.cfg, j.threads, j.strategy);
        assert_eq!(
            *got, seq,
            "parallel trial diverged from its sequential reference"
        );
    }
    out
}

/// Run a DAXPY configuration (steady state: warm run differenced against a
/// short run, like the harness does).
pub fn daxpy_steady_cycles(ws: usize, threads: usize, policy: &PrefetchPolicy, reps: usize) -> u64 {
    let cfg = MachineConfig::smp4();
    let run = |r: usize| {
        let d = Daxpy::build(DaxpyParams::new(ws, r), policy, cfg.mem_bytes);
        let (_m, run) = execute_plain(&d, &cfg, Team::new(threads));
        run.cycles
    };
    run(8 + reps) - run(8)
}

/// Run one NPB benchmark arm; `strategy: None` is the prefetch baseline.
pub fn npb_metrics(
    bench: npb::Benchmark,
    machine_cfg: &MachineConfig,
    threads: usize,
    strategy: Option<Strategy>,
) -> SimMetrics {
    let wl = npb::build(bench, &PrefetchPolicy::aggressive(), machine_cfg.mem_bytes);
    let team = Team::new(threads);
    let (machine, cycles) = match strategy {
        None => {
            let (m, run) = execute_plain(&*wl, machine_cfg, team);
            (m, run.cycles)
        }
        Some(strategy) => {
            let rt = OmpRuntime {
                quantum: 20_000,
                ..OmpRuntime::default()
            };
            let mut m = Machine::new(machine_cfg.clone(), wl.image().clone());
            wl.init(&mut m.shared.mem);
            let mut cobra = Cobra::builder().strategy(strategy).attach(&mut m);
            let run = wl.run(&mut m, team, &rt, &mut cobra);
            cobra.detach(&mut m);
            wl.verify(&m.shared.mem).expect("verified under COBRA");
            (m, run.cycles)
        }
    };
    let total = machine.total_stats();
    SimMetrics {
        cycles,
        l3_misses: total.get(Event::L3Miss),
        bus_transactions: total.get(Event::BusMemory),
    }
}

/// Register a deterministic metric with Criterion: the value is computed
/// once and reported as `value` nanoseconds per iteration.
pub fn bench_metric(c: &mut Criterion, group: &str, id: BenchmarkId, value: u64) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.measurement_time(Duration::from_millis(60));
    g.warm_up_time(Duration::from_millis(5));
    g.bench_function(id, |b| {
        let mut call = 0u64;
        b.iter_custom(move |iters| {
            let reported = value.max(2).saturating_mul(iters);
            // iter_custom estimates iteration counts from *wall* time, so
            // consume roughly the reported duration for real (capped); the
            // recorded measurement is the exact simulated value below.
            std::thread::sleep(Duration::from_nanos(reported.min(20_000_000)));
            // A ±1-ns wobble keeps criterion's statistics finite (a truly
            // constant sample has zero variance, which the plotting
            // backend rejects); the value stays exact to 1 ns.
            call += 1;
            Duration::from_nanos(reported.saturating_add(call % 2))
        })
    });
    g.finish();
}
