//! Sample records, laid out as §3.1 of the paper describes:
//!
//! > "Each sample consists of a sample index, Program Counter (PC) address,
//! > process ID, thread ID, processor ID, four performance counters, eight
//! > BTB entries, data cache miss instruction address, miss latency, and
//! > miss data cache line address."
//!
//! (Four BTB *pairs* are eight buffer entries — four branch addresses and
//! four target addresses.)

use cobra_machine::{BtbEntry, DearRecord, Event};
use serde::{Deserialize, Serialize};

/// The fixed number of programmable performance counters (Itanium 2 exposes
/// four counting PMCs to perfmon).
pub const NUM_PMCS: usize = 4;

/// Selection of the four monitored events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmcSelection {
    pub events: [Event; NUM_PMCS],
}

impl PmcSelection {
    /// The selection COBRA programs by default: coherence traffic relative
    /// to total bus traffic, plus cache-miss progress counters.
    pub fn coherence_default() -> Self {
        PmcSelection {
            events: [
                Event::BusMemory,
                Event::BusRdHitm,
                Event::L2Miss,
                Event::L3Miss,
            ],
        }
    }
}

/// One sample captured on a PMC overflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Monotone per-CPU sample index.
    pub index: u64,
    /// PC of the monitored CPU at capture time.
    pub pc: u32,
    /// Process id (single simulated process: always 1).
    pub pid: u32,
    /// Software thread id running on the CPU (0xffff_ffff when idle).
    pub tid: u32,
    /// Processor id.
    pub cpu: u32,
    /// Machine cycle of the capture.
    pub cycle: u64,
    /// Free-running values of the four programmed counters.
    pub counters: [u64; NUM_PMCS],
    /// Events each counter is programmed to.
    pub events: [Event; NUM_PMCS],
    /// The last taken-branch pairs (up to four source/target pairs — the
    /// "eight BTB entries").
    pub btb: Vec<BtbEntry>,
    /// Data Event Address Register contents: the most recent qualifying
    /// cache-miss (instruction address, data address, latency).
    pub dear: Option<DearRecord>,
}

impl SampleRecord {
    /// Counter value for `event`, if it was one of the programmed four.
    pub fn counter(&self, event: Event) -> Option<u64> {
        self.events
            .iter()
            .position(|&e| e == event)
            .map(|i| self.counters[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_lookup_by_event() {
        let sel = PmcSelection::coherence_default();
        let rec = SampleRecord {
            index: 0,
            pc: 5,
            pid: 1,
            tid: 2,
            cpu: 3,
            cycle: 100,
            counters: [10, 20, 30, 40],
            events: sel.events,
            btb: vec![],
            dear: None,
        };
        assert_eq!(rec.counter(Event::BusMemory), Some(10));
        assert_eq!(rec.counter(Event::L3Miss), Some(40));
        assert_eq!(rec.counter(Event::CpuCycles), None);
    }
}
