//! # cobra-perfmon — the sampling-driver analogue
//!
//! On the paper's systems, COBRA's monitoring threads "track signals from
//! the perfmon sampling kernel drivers" and copy performance-counter state
//! from a Kernel Sampling Buffer into a User Sampling Buffer (§3.1). This
//! crate plays the part of that kernel driver for the simulated machine:
//!
//! * [`PerfmonConfig`]/[`PerfmonDriver`] — program the four PMCs and the
//!   sampling period on every CPU, accumulate overflow-triggered
//!   [`SampleRecord`]s in per-CPU kernel buffers, and hand them to the
//!   monitoring threads via [`PerfmonDriver::drain`].
//! * [`SampleRecord`] — the paper's sample layout: index, PC, pid/tid/cpu,
//!   four counters, the BTB pairs, and the DEAR miss triple.

pub mod driver;
pub mod sample;

pub use driver::{PerfmonConfig, PerfmonDriver};
pub use sample::{PmcSelection, SampleRecord, NUM_PMCS};
