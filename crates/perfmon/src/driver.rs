//! The sampling "kernel driver".
//!
//! Mirrors the perfmon architecture of §3.1–3.2: at startup "all hardware
//! performance counters are initialized by [the] perfmon sampling kernel
//! device driver" and a **Kernel Sampling Buffer** is allocated per CPU;
//! each monitoring thread later copies samples out into its own User
//! Sampling Buffer. Here, [`PerfmonDriver::attach`] programs every CPU's HPM
//! and [`PerfmonDriver::poll`] converts accumulated PMC overflows into
//! [`SampleRecord`]s in per-CPU ring buffers, which COBRA's monitoring
//! threads drain with [`PerfmonDriver::drain`].
//!
//! Polling happens at simulation-quantum boundaries — the moral equivalent
//! of the driver's overflow interrupt + signal delivery, at the coarse
//! sampling granularity the paper relies on to keep overhead low.

use std::collections::VecDeque;

use cobra_machine::{Event, Machine, SamplingConfig};
use serde::{Deserialize, Serialize};

use crate::sample::{PmcSelection, SampleRecord, NUM_PMCS};

/// Driver-wide configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PerfmonConfig {
    /// The four monitored events.
    pub pmcs: PmcSelection,
    /// Event driving the sampling interrupt.
    pub sampling_event: Event,
    /// Overflow period of the sampling event.
    pub sampling_period: u64,
    /// Kernel sampling buffer capacity per CPU (samples beyond it are
    /// dropped and counted, as a real ring would).
    pub buffer_capacity: usize,
}

impl Default for PerfmonConfig {
    fn default() -> Self {
        PerfmonConfig {
            pmcs: PmcSelection::coherence_default(),
            sampling_event: Event::InstRetired,
            sampling_period: 20_000,
            buffer_capacity: 4096,
        }
    }
}

#[derive(Debug, Default)]
struct CpuCtx {
    buffer: VecDeque<SampleRecord>,
    next_index: u64,
    dropped: u64,
}

/// Per-machine sampling driver.
#[derive(Debug)]
pub struct PerfmonDriver {
    config: PerfmonConfig,
    per_cpu: Vec<CpuCtx>,
    attached: bool,
}

impl PerfmonDriver {
    pub fn new(num_cpus: usize, config: PerfmonConfig) -> Self {
        assert!(config.sampling_period > 0);
        assert!(config.buffer_capacity > 0);
        PerfmonDriver {
            config,
            per_cpu: (0..num_cpus).map(|_| CpuCtx::default()).collect(),
            attached: false,
        }
    }

    pub fn config(&self) -> &PerfmonConfig {
        &self.config
    }

    /// Program every CPU's HPM for sampling (counter init at startup, §3.2).
    pub fn attach(&mut self, machine: &mut Machine) {
        assert_eq!(
            machine.num_cpus(),
            self.per_cpu.len(),
            "driver/machine CPU count mismatch"
        );
        for cpu in 0..machine.num_cpus() {
            let baseline = machine.stats()[cpu].get(self.config.sampling_event);
            machine.shared.hpm[cpu].program_sampling(
                SamplingConfig {
                    event: self.config.sampling_event,
                    period: self.config.sampling_period,
                },
                baseline,
            );
        }
        self.attached = true;
    }

    /// Detach: stop sampling on every CPU (buffers keep pending samples).
    pub fn detach(&mut self, machine: &mut Machine) {
        for cpu in 0..machine.num_cpus() {
            machine.shared.hpm[cpu].stop_sampling();
        }
        self.attached = false;
    }

    /// Convert pending PMC overflow captures into sample records. Call
    /// between simulation quanta. Each capture carries the monitor state of
    /// the overflow *instant* (PC, cycle, counters, BTB, DEAR), as a real
    /// PMU interrupt would record.
    pub fn poll(&mut self, machine: &mut Machine) {
        assert!(self.attached, "poll before attach");
        for cpu in 0..machine.num_cpus() {
            let captures = machine.shared.hpm[cpu].take_overflows();
            if captures.is_empty() {
                continue;
            }
            let ctx = &mut self.per_cpu[cpu];
            for cap in captures {
                if ctx.buffer.len() >= self.config.buffer_capacity {
                    ctx.dropped += 1;
                    continue;
                }
                let mut counters = [0u64; NUM_PMCS];
                for (k, &e) in self.config.pmcs.events.iter().enumerate() {
                    counters[k] = cap.stats.get(e);
                }
                let rec = SampleRecord {
                    index: ctx.next_index,
                    pc: cap.pc,
                    pid: 1,
                    tid: cap.tid,
                    cpu: cpu as u32,
                    cycle: cap.cycle,
                    counters,
                    events: self.config.pmcs.events,
                    btb: cap.btb,
                    dear: cap.dear,
                };
                ctx.next_index += 1;
                ctx.buffer.push_back(rec);
            }
        }
    }

    /// Drain all buffered samples for one CPU (the monitoring thread's copy
    /// into its User Sampling Buffer).
    pub fn drain(&mut self, cpu: usize) -> Vec<SampleRecord> {
        self.per_cpu[cpu].buffer.drain(..).collect()
    }

    /// Samples currently buffered for a CPU.
    pub fn pending(&self, cpu: usize) -> usize {
        self.per_cpu[cpu].buffer.len()
    }

    /// Samples dropped on a CPU due to a full kernel buffer.
    pub fn dropped(&self, cpu: usize) -> u64 {
        self.per_cpu[cpu].dropped
    }

    /// Total samples ever produced across CPUs.
    pub fn total_samples(&self) -> u64 {
        self.per_cpu.iter().map(|c| c.next_index).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_isa::Assembler;
    use cobra_machine::MachineConfig;

    /// A busy-loop program: every CPU can run it.
    fn busy_program(iters: i64) -> cobra_isa::CodeImage {
        let mut a = Assembler::new();
        a.movi(4, iters);
        a.mov_to_lc(4);
        let top = a.new_label();
        a.bind(top);
        a.addi(5, 5, 1);
        a.br_cloop(top);
        a.hlt();
        a.finish()
    }

    fn sampled_machine(iters: i64, threads: usize, period: u64) -> (Machine, PerfmonDriver) {
        let mut m = Machine::new(MachineConfig::smp4(), busy_program(iters));
        for cpu in 0..threads {
            m.spawn_thread(cpu, 0, &[]);
        }
        let mut drv = PerfmonDriver::new(
            4,
            PerfmonConfig {
                sampling_period: period,
                ..PerfmonConfig::default()
            },
        );
        drv.attach(&mut m);
        (m, drv)
    }

    #[test]
    fn sampling_produces_proportional_records() {
        let (mut m, mut drv) = sampled_machine(5_000, 1, 1000);
        let r = m.run(1_000_000);
        assert!(r.halted);
        drv.poll(&mut m);
        let samples = drv.drain(0);
        // ~2 retired insns per iteration + setup: at least 8 samples.
        assert!(samples.len() >= 8, "got {}", samples.len());
        assert_eq!(drv.pending(0), 0, "drain empties the buffer");
        // Indices are monotone, cpu/tid tagged.
        for (k, s) in samples.iter().enumerate() {
            assert_eq!(s.index, k as u64);
            assert_eq!(s.cpu, 0);
            assert_eq!(s.tid, 0);
            assert_eq!(s.pid, 1);
        }
        // Counters are non-decreasing across records.
        for w in samples.windows(2) {
            for k in 0..NUM_PMCS {
                assert!(w[1].counters[k] >= w[0].counters[k]);
            }
        }
    }

    #[test]
    fn samples_tag_each_cpu_separately() {
        let (mut m, mut drv) = sampled_machine(2_000, 4, 500);
        let r = m.run(1_000_000);
        assert!(r.halted);
        drv.poll(&mut m);
        for cpu in 0..4 {
            let samples = drv.drain(cpu);
            assert!(!samples.is_empty(), "cpu {cpu} produced no samples");
            assert!(samples.iter().all(|s| s.cpu == cpu as u32));
            assert!(
                samples.iter().all(|s| s.tid == cpu as u32),
                "tid == spawn order here"
            );
        }
        assert!(drv.total_samples() > 0);
    }

    #[test]
    fn btb_snapshots_capture_the_loop() {
        let (mut m, mut drv) = sampled_machine(5_000, 1, 2000);
        m.run(1_000_000);
        drv.poll(&mut m);
        let samples = drv.drain(0);
        let with_btb = samples.iter().filter(|s| !s.btb.is_empty()).count();
        assert!(with_btb > 0, "loop branches must appear in BTB snapshots");
        // The loop back edge branches to the bound label; targets repeat.
        let s = samples.iter().find(|s| s.btb.len() == 4).expect("full BTB");
        let target = s.btb[0].target;
        assert!(s.btb.iter().all(|e| e.target == target), "single hot loop");
    }

    #[test]
    fn buffer_overflow_drops_and_counts() {
        let (mut m, mut drv) = {
            let mut m = Machine::new(MachineConfig::smp4(), busy_program(50_000));
            m.spawn_thread(0, 0, &[]);
            let mut drv = PerfmonDriver::new(
                4,
                PerfmonConfig {
                    sampling_period: 100,
                    buffer_capacity: 16,
                    ..PerfmonConfig::default()
                },
            );
            drv.attach(&mut m);
            (m, drv)
        };
        m.run(10_000_000);
        drv.poll(&mut m);
        assert_eq!(drv.pending(0), 16);
        assert!(drv.dropped(0) > 0);
    }

    #[test]
    fn detach_stops_sampling() {
        let (mut m, mut drv) = sampled_machine(2_000, 1, 200);
        m.run_quantum(2_000);
        drv.poll(&mut m);
        let first = drv.drain(0).len();
        assert!(first > 0);
        drv.detach(&mut m);
        m.run(10_000_000);
        // No further overflows accumulate after detach.
        assert!(m.shared.hpm[0].take_overflows().is_empty());
    }

    #[test]
    #[should_panic(expected = "poll before attach")]
    fn poll_requires_attach() {
        let mut m = Machine::new(MachineConfig::smp4(), busy_program(10));
        let mut drv = PerfmonDriver::new(4, PerfmonConfig::default());
        drv.poll(&mut m);
    }
}
