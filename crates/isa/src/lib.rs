//! # cobra-isa — an Itanium-2-inspired instruction set for runtime binary optimization
//!
//! The COBRA paper (ICPP 2007) performs its optimizations by *rewriting binary
//! instructions in place*: turning `lfetch.nt1` prefetches into `nop.m`, adding the
//! `.excl` ownership hint to selected prefetches, and redirecting hot loops into a
//! trace cache. Reproducing that faithfully requires an actual binary instruction
//! format, not an AST. This crate provides:
//!
//! * [`Insn`] — a typed model of the Itanium 2 subset the paper's workloads need:
//!   FP loads/stores (`ldfd`/`stfd`), integer loads/stores (`ld8`/`st8`, with the
//!   `.bias` ownership hint), `lfetch` with locality hints and the `.excl`
//!   completer, `fma.d` and friends, predicated compares, modulo-scheduled loop
//!   branches (`br.ctop`, `br.cloop`, `br.wtop`), and the atomic `fetchadd8` /
//!   `cmpxchg8` used by the OpenMP runtime's barriers.
//! * [`encode`]/[`decode`] — a concrete, fully round-trippable 64-bit-per-slot
//!   binary encoding. Binary rewriting in `cobra-rt` operates on these words.
//! * [`Assembler`] — labels, fixups and bundle packing for the `minicc` code
//!   generator in `cobra-kernels`.
//! * [`CodeImage`] — the program binary: a word-addressed code segment plus a
//!   growable trace-cache region, with validated patching (the deployment target
//!   of the COBRA optimizer).
//! * [`disasm`] — textual disassembly used to regenerate the paper's Figure 2.
//!
//! ## Addressing conventions
//!
//! Code addresses are **word indices** into the [`CodeImage`] (one instruction
//! slot per 64-bit word, three slots per bundle). Data addresses are **byte
//! addresses** into the machine's flat data memory. The two spaces are disjoint,
//! matching the split instruction/data view a user-mode optimizer has of a
//! running process.

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod image;
pub mod insn;
pub mod regs;
pub mod uop;

pub use asm::{Assembler, Label};
pub use encode::{decode, encode, DecodeError};
pub use image::{CodeImage, PatchError};
pub use insn::{
    BrKind, CmpRel, FUnit, Insn, LfetchHint, Unit, NOP_SLOT_B, NOP_SLOT_F, NOP_SLOT_I, NOP_SLOT_M,
};
pub use regs::{ROT_FR_BASE, ROT_FR_SIZE, ROT_GR_BASE, ROT_GR_SIZE, ROT_PR_BASE, ROT_PR_SIZE};
pub use uop::{MicroOp, OpClass, SrcReg};

/// A code address: an index of a 64-bit instruction slot in a [`CodeImage`].
pub type CodeAddr = u32;

/// Number of instruction slots per bundle (Itanium issues three-slot bundles).
pub const SLOTS_PER_BUNDLE: u32 = 3;

/// Round a code address down to the start of its bundle.
#[inline]
pub fn bundle_start(addr: CodeAddr) -> CodeAddr {
    addr - addr % SLOTS_PER_BUNDLE
}

/// Round a code address up to the next bundle boundary (identity if aligned).
#[inline]
pub fn bundle_align(addr: CodeAddr) -> CodeAddr {
    addr.div_ceil(SLOTS_PER_BUNDLE) * SLOTS_PER_BUNDLE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_math() {
        assert_eq!(bundle_start(0), 0);
        assert_eq!(bundle_start(1), 0);
        assert_eq!(bundle_start(2), 0);
        assert_eq!(bundle_start(3), 3);
        assert_eq!(bundle_start(7), 6);
        assert_eq!(bundle_align(0), 0);
        assert_eq!(bundle_align(1), 3);
        assert_eq!(bundle_align(3), 3);
        assert_eq!(bundle_align(4), 6);
    }
}
