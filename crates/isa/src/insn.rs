//! Typed instruction model.
//!
//! Every instruction carries a qualifying predicate `qp`: the instruction only
//! takes effect when predicate register `qp` is true (`p0` is hard-wired true,
//! so `qp == 0` means "always execute"). This is the Itanium predication model
//! that software-pipelined loops rely on — in the paper's Figure 2 the loads
//! and stores of the DAXPY kernel are guarded by `(p16)`/`(p21)`/`(p23)` so
//! that the pipeline fills and drains correctly.

use serde::{Deserialize, Serialize};

use crate::CodeAddr;

/// Execution unit an instruction occupies inside a bundle.
///
/// `M` = memory, `I` = integer, `F` = floating point, `B` = branch. The
/// assembler packs slots into bundles and the disassembler prints the
/// icc-style `{ .mii ... }` template headers from these kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    M,
    I,
    F,
    B,
}

/// Alias kept for API symmetry with the FP-heavy kernels.
pub type FUnit = Unit;

/// Locality hint on an `lfetch` data-prefetch instruction.
///
/// On Itanium 2, `lfetch.nt1` (the hint icc emits for array prefetching, see
/// Figure 2 of the paper) allocates the line in L2 but not L1; `nt2` targets
/// L3 and `nta` is non-temporal-all-levels. The hint does not affect
/// correctness — `lfetch` is non-binding — only where the line is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LfetchHint {
    /// No hint: allocate in all levels.
    #[default]
    None,
    /// `.nt1`: bypass L1, allocate in L2/L3.
    Nt1,
    /// `.nt2`: bypass L1/L2, allocate in L3.
    Nt2,
    /// `.nta`: non-temporal in all levels (allocate in L2/L3, mark for early
    /// eviction; the timing model treats it like `.nt2`).
    Nta,
}

/// Comparison relation for `cmp`/`fcmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpRel {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Unsigned less-than (integer compares only).
    Ltu,
    /// Unsigned greater-or-equal (integer compares only).
    Geu,
}

impl CmpRel {
    /// Evaluate the relation on signed integers (`Ltu`/`Geu` reinterpret bits
    /// as unsigned).
    #[inline]
    pub fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            CmpRel::Eq => a == b,
            CmpRel::Ne => a != b,
            CmpRel::Lt => a < b,
            CmpRel::Le => a <= b,
            CmpRel::Gt => a > b,
            CmpRel::Ge => a >= b,
            CmpRel::Ltu => (a as u64) < (b as u64),
            CmpRel::Geu => (a as u64) >= (b as u64),
        }
    }

    /// Evaluate the relation on floats. `Ltu`/`Geu` are not defined for FP
    /// compares and evaluate like their signed counterparts.
    #[inline]
    pub fn eval_f64(self, a: f64, b: f64) -> bool {
        match self {
            CmpRel::Eq => a == b,
            CmpRel::Ne => a != b,
            CmpRel::Lt | CmpRel::Ltu => a < b,
            CmpRel::Le => a <= b,
            CmpRel::Gt => a > b,
            CmpRel::Ge | CmpRel::Geu => a >= b,
        }
    }

    /// Mnemonic completer (`eq`, `ne`, `lt`, ...).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpRel::Eq => "eq",
            CmpRel::Ne => "ne",
            CmpRel::Lt => "lt",
            CmpRel::Le => "le",
            CmpRel::Gt => "gt",
            CmpRel::Ge => "ge",
            CmpRel::Ltu => "ltu",
            CmpRel::Geu => "geu",
        }
    }
}

/// Branch flavour (used by [`Op::branch_kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BrKind {
    /// `br.cond` — taken when the qualifying predicate is true.
    Cond,
    /// `br.ctop` — modulo-scheduled counted-loop branch (rotates registers).
    Ctop,
    /// `br.cloop` — counted loop on `LC` without register rotation.
    Cloop,
    /// `br.wtop` — modulo-scheduled while-loop branch (rotates registers).
    Wtop,
    /// `br.call` — saves the return address in `b0`.
    Call,
    /// `br.ret` — returns through `b0`.
    Ret,
}

/// Operation payload of an instruction (see [`Insn`]).
///
/// Register operand fields hold *virtual* register numbers; the core maps them
/// through the rotating-register bases at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Op {
    // ---- memory ----
    /// `ld8 rD=[rB],imm` — 8-byte integer load with optional post-increment.
    /// `bias` requests the line in Exclusive state (the `.bias` hint of §4).
    Ld8 {
        dest: u8,
        base: u8,
        post_inc: i32,
        bias: bool,
    },
    /// `st8 [rB]=rS,imm` — 8-byte integer store.
    St8 { src: u8, base: u8, post_inc: i32 },
    /// `ldfd fD=[rB],imm` — FP double load (bypasses L1 on Itanium 2).
    Ldfd { dest: u8, base: u8, post_inc: i32 },
    /// `stfd [rB]=fS,imm` — FP double store.
    Stfd { src: u8, base: u8, post_inc: i32 },
    /// `lfetch[.hint][.excl] [rB],imm` — non-binding data prefetch. The
    /// `.excl` completer requests the line in Exclusive rather than Shared
    /// state; the COBRA optimizer toggles `excl` and rewrites whole `lfetch`es
    /// to `nop.m` at runtime.
    Lfetch {
        base: u8,
        post_inc: i32,
        hint: LfetchHint,
        excl: bool,
    },
    /// `fetchadd8 rD=[rB],imm` — atomic fetch-and-add (acquire semantics).
    FetchAdd8 { dest: u8, base: u8, inc: i32 },
    /// `cmpxchg8 rD=[rB],rN ? rC` — atomic compare-exchange: if `[rB] == rC`
    /// store `rN`; `rD` receives the old value. (The architectural `ar.ccv`
    /// comparand register is modelled as the explicit operand `cmp`.)
    Cmpxchg8 {
        dest: u8,
        base: u8,
        new: u8,
        cmp: u8,
    },

    // ---- floating point ----
    /// `fma.d fD=f1,f2,f3` — fused multiply-add: `fD = f1*f2 + f3`.
    FmaD { dest: u8, f1: u8, f2: u8, f3: u8 },
    /// `fms.d fD=f1,f2,f3` — fused multiply-subtract: `fD = f1*f2 - f3`.
    FmsD { dest: u8, f1: u8, f2: u8, f3: u8 },
    /// `fadd.d fD=f1,f2`.
    FaddD { dest: u8, f1: u8, f2: u8 },
    /// `fsub.d fD=f1,f2`.
    FsubD { dest: u8, f1: u8, f2: u8 },
    /// `fmul.d fD=f1,f2`.
    FmulD { dest: u8, f1: u8, f2: u8 },
    /// `fdiv.d fD=f1,f2` — modelled as a single long-latency instruction
    /// (real Itanium expands division into an frcpa + Newton iteration
    /// sequence; see DESIGN.md §6).
    FdivD { dest: u8, f1: u8, f2: u8 },
    /// `fsqrt.d fD=f1` — single long-latency instruction (same caveat).
    FsqrtD { dest: u8, f1: u8 },
    /// `fabs fD=f1`.
    FabsD { dest: u8, f1: u8 },
    /// `fneg fD=f1`.
    FnegD { dest: u8, f1: u8 },
    /// `fcmp.rel pA,pB=f1,f2` — sets `pA` to the comparison result and `pB`
    /// to its complement.
    FcmpD {
        p1: u8,
        p2: u8,
        rel: CmpRel,
        f1: u8,
        f2: u8,
    },
    /// `setf.d fD=rS` — move GR bits into an FR (bit pattern reinterpreted as
    /// an IEEE double).
    SetfD { dest: u8, src: u8 },
    /// `getf.d rD=fS` — move FR bits into a GR.
    GetfD { dest: u8, src: u8 },
    /// `setf.sig fD=rS` — move GR value into an FR significand (integer in FR).
    SetfSig { dest: u8, src: u8 },
    /// `getf.sig rD=fS` — move an FR significand integer into a GR.
    GetfSig { dest: u8, src: u8 },
    /// `fcvt.xf fD=fS` — convert the signed integer in `fS`'s significand to
    /// a double.
    FcvtXf { dest: u8, src: u8 },
    /// `fcvt.fx.trunc fD=fS` — truncate the double in `fS` to a signed
    /// integer significand.
    FcvtFxTrunc { dest: u8, src: u8 },

    // ---- integer ----
    /// `add rD=r2,r3`.
    Add { dest: u8, r2: u8, r3: u8 },
    /// `sub rD=r2,r3`.
    Sub { dest: u8, r2: u8, r3: u8 },
    /// `adds rD=imm,rS` — add a (sign-extended) immediate.
    AddI { dest: u8, src: u8, imm: i32 },
    /// `xmpy.l rD=r2,r3` — 64-bit integer multiply (low half).
    Mul { dest: u8, r2: u8, r3: u8 },
    /// `shl rD=rS,count`.
    ShlI { dest: u8, src: u8, count: u8 },
    /// `shr.u rD=rS,count`.
    ShrI { dest: u8, src: u8, count: u8 },
    /// `shr rD=rS,count` (arithmetic).
    SarI { dest: u8, src: u8, count: u8 },
    /// `and rD=r2,r3`.
    And { dest: u8, r2: u8, r3: u8 },
    /// `or rD=r2,r3`.
    Or { dest: u8, r2: u8, r3: u8 },
    /// `xor rD=r2,r3`.
    Xor { dest: u8, r2: u8, r3: u8 },
    /// `and rD=imm,rS`.
    AndI { dest: u8, src: u8, imm: i32 },
    /// `movl rD=imm` — load a 43-bit sign-extended immediate (the model's
    /// counterpart of the two-slot `movl`; 43 bits cover every code, data and
    /// loop-bound constant the workloads use).
    MovI { dest: u8, imm: i64 },
    /// `cmp.rel pA,pB=r2,r3`.
    Cmp {
        p1: u8,
        p2: u8,
        rel: CmpRel,
        r2: u8,
        r3: u8,
    },
    /// `cmp.rel pA,pB=imm,r3`.
    CmpI {
        p1: u8,
        p2: u8,
        rel: CmpRel,
        imm: i32,
        r3: u8,
    },

    // ---- branches ----
    /// `br.cond target` — taken when the qualifying predicate holds.
    BrCond { target: CodeAddr },
    /// `br.ctop target` — software-pipelined counted-loop back edge: while
    /// `LC > 0` it decrements `LC`, writes `p63`=1 (visible as `p16` after
    /// rotation), rotates, and branches; during the epilogue (`EC > 1`) it
    /// writes `p63`=0, decrements `EC`, rotates and branches; otherwise it
    /// falls through.
    BrCtop { target: CodeAddr },
    /// `br.cloop target` — counted loop on `LC` without rotation.
    BrCloop { target: CodeAddr },
    /// `br.wtop target` — software-pipelined while-loop back edge (branches
    /// on the qualifying predicate, rotating on the taken path).
    BrWtop { target: CodeAddr },
    /// `br.call b0=target`.
    BrCall { target: CodeAddr },
    /// `br.ret b0`.
    BrRet,

    // ---- moves to/from application registers ----
    /// `mov ar.lc=rS`.
    MovToLc { src: u8 },
    /// `mov ar.ec=rS`.
    MovToEc { src: u8 },
    /// `mov rD=ar.lc`.
    MovFromLc { dest: u8 },
    /// `mov rD=ar.ec`.
    MovFromEc { dest: u8 },
    /// `mov b0=rS`.
    MovToB0 { src: u8 },
    /// `mov rD=b0`.
    MovFromB0 { dest: u8 },
    /// `clrrrb` — clear the rotating register bases.
    Clrrrb,

    // ---- misc ----
    /// `nop.{m,i,f,b}` — the COBRA `noprefetch` optimization overwrites
    /// `lfetch` (an M-unit instruction) with `nop.m`, exactly as in §5.2.
    Nop { unit: Unit },
    /// `hlt` — terminate the executing simulated thread (models the return
    /// from an outlined parallel-region body into the runtime).
    Hlt,
}

/// One instruction slot: a qualifying predicate plus an operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Insn {
    /// Qualifying predicate register (0 = always execute).
    pub qp: u8,
    pub op: Op,
}

impl Insn {
    /// Unpredicated instruction.
    #[inline]
    pub fn new(op: Op) -> Self {
        Insn { qp: 0, op }
    }

    /// Instruction guarded by predicate register `qp`.
    #[inline]
    pub fn pred(qp: u8, op: Op) -> Self {
        Insn { qp, op }
    }

    /// Execution unit this instruction occupies.
    pub fn unit(&self) -> Unit {
        self.op.unit()
    }

    /// Is this any branch flavour?
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.op.branch_kind().is_some()
    }

    /// Is this a data prefetch?
    #[inline]
    pub fn is_lfetch(&self) -> bool {
        matches!(self.op, Op::Lfetch { .. })
    }
}

impl Op {
    /// Execution unit for bundle packing and `nop.{m,i,f,b}` selection.
    pub fn unit(&self) -> Unit {
        use Op::*;
        match self {
            Ld8 { .. }
            | St8 { .. }
            | Ldfd { .. }
            | Stfd { .. }
            | Lfetch { .. }
            | FetchAdd8 { .. }
            | Cmpxchg8 { .. }
            | SetfD { .. }
            | GetfD { .. }
            | SetfSig { .. }
            | GetfSig { .. } => Unit::M,
            FmaD { .. }
            | FmsD { .. }
            | FaddD { .. }
            | FsubD { .. }
            | FmulD { .. }
            | FdivD { .. }
            | FsqrtD { .. }
            | FabsD { .. }
            | FnegD { .. }
            | FcmpD { .. }
            | FcvtXf { .. }
            | FcvtFxTrunc { .. } => Unit::F,
            Add { .. }
            | Sub { .. }
            | AddI { .. }
            | Mul { .. }
            | ShlI { .. }
            | ShrI { .. }
            | SarI { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | AndI { .. }
            | MovI { .. }
            | Cmp { .. }
            | CmpI { .. }
            | MovToLc { .. }
            | MovToEc { .. }
            | MovFromLc { .. }
            | MovFromEc { .. }
            | MovToB0 { .. }
            | MovFromB0 { .. }
            | Clrrrb => Unit::I,
            BrCond { .. }
            | BrCtop { .. }
            | BrCloop { .. }
            | BrWtop { .. }
            | BrCall { .. }
            | BrRet
            | Hlt => Unit::B,
            Nop { unit } => *unit,
        }
    }

    /// Branch flavour, if this is a branch.
    pub fn branch_kind(&self) -> Option<BrKind> {
        match self {
            Op::BrCond { .. } => Some(BrKind::Cond),
            Op::BrCtop { .. } => Some(BrKind::Ctop),
            Op::BrCloop { .. } => Some(BrKind::Cloop),
            Op::BrWtop { .. } => Some(BrKind::Wtop),
            Op::BrCall { .. } => Some(BrKind::Call),
            Op::BrRet => Some(BrKind::Ret),
            _ => None,
        }
    }

    /// Static branch target, if any (`br.ret` has none).
    pub fn branch_target(&self) -> Option<CodeAddr> {
        match *self {
            Op::BrCond { target }
            | Op::BrCtop { target }
            | Op::BrCloop { target }
            | Op::BrWtop { target }
            | Op::BrCall { target } => Some(target),
            _ => None,
        }
    }

    /// Same operation with the branch target replaced (used when relocating
    /// loop bodies into the trace cache). Returns `None` when the operation
    /// has no static target.
    pub fn with_branch_target(&self, new: CodeAddr) -> Option<Op> {
        match *self {
            Op::BrCond { .. } => Some(Op::BrCond { target: new }),
            Op::BrCtop { .. } => Some(Op::BrCtop { target: new }),
            Op::BrCloop { .. } => Some(Op::BrCloop { target: new }),
            Op::BrWtop { .. } => Some(Op::BrWtop { target: new }),
            Op::BrCall { .. } => Some(Op::BrCall { target: new }),
            _ => None,
        }
    }

    /// Does this operation access data memory (including prefetch)?
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Op::Ld8 { .. }
                | Op::St8 { .. }
                | Op::Ldfd { .. }
                | Op::Stfd { .. }
                | Op::Lfetch { .. }
                | Op::FetchAdd8 { .. }
                | Op::Cmpxchg8 { .. }
        )
    }
}

/// `nop.m` slot — what `noprefetch` writes over an `lfetch`.
pub const NOP_SLOT_M: Insn = Insn {
    qp: 0,
    op: Op::Nop { unit: Unit::M },
};
/// `nop.i` slot.
pub const NOP_SLOT_I: Insn = Insn {
    qp: 0,
    op: Op::Nop { unit: Unit::I },
};
/// `nop.f` slot.
pub const NOP_SLOT_F: Insn = Insn {
    qp: 0,
    op: Op::Nop { unit: Unit::F },
};
/// `nop.b` slot.
pub const NOP_SLOT_B: Insn = Insn {
    qp: 0,
    op: Op::Nop { unit: Unit::B },
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_are_consistent_with_slot_classes() {
        assert_eq!(
            Op::Lfetch {
                base: 1,
                post_inc: 0,
                hint: LfetchHint::Nt1,
                excl: false
            }
            .unit(),
            Unit::M
        );
        assert_eq!(
            Op::FmaD {
                dest: 6,
                f1: 7,
                f2: 8,
                f3: 9
            }
            .unit(),
            Unit::F
        );
        assert_eq!(Op::BrCtop { target: 0 }.unit(), Unit::B);
        assert_eq!(
            Op::Add {
                dest: 1,
                r2: 2,
                r3: 3
            }
            .unit(),
            Unit::I
        );
        assert_eq!(Op::Nop { unit: Unit::F }.unit(), Unit::F);
    }

    #[test]
    fn cmp_rel_semantics() {
        assert!(CmpRel::Lt.eval_i64(-1, 0));
        assert!(!CmpRel::Ltu.eval_i64(-1, 0), "-1 as u64 is huge");
        assert!(CmpRel::Geu.eval_i64(-1, 0));
        assert!(CmpRel::Ne.eval_f64(1.0, 2.0));
        assert!(!CmpRel::Eq.eval_f64(f64::NAN, f64::NAN));
    }

    #[test]
    fn branch_target_rewrite() {
        let op = Op::BrCtop { target: 10 };
        assert_eq!(op.branch_target(), Some(10));
        assert_eq!(op.with_branch_target(99), Some(Op::BrCtop { target: 99 }));
        assert_eq!(Op::BrRet.with_branch_target(99), None);
        assert_eq!(Op::Hlt.branch_target(), None);
    }

    #[test]
    fn lfetch_predicates() {
        let lf = Insn::pred(
            16,
            Op::Lfetch {
                base: 43,
                post_inc: 0,
                hint: LfetchHint::Nt1,
                excl: false,
            },
        );
        assert!(lf.is_lfetch());
        assert!(!lf.is_branch());
        assert_eq!(lf.qp, 16);
        assert!(!NOP_SLOT_M.is_lfetch());
    }
}
