//! Pre-decoded micro-ops: the flat, execute-ready form of an [`Insn`].
//!
//! The per-cycle interpreter re-derives two facts about every instruction on
//! every fetch: which registers it reads (one big `match` to consult the
//! stall-on-use scoreboard) and whether it can touch the memory system or
//! transfer control. A [`MicroOp`] computes both once, at block-build time,
//! so the hot loop degenerates to a table walk: read the pre-resolved source
//! list, compare scoreboard entries, execute. The block dispatch engine in
//! `cobra-machine` lowers every instruction of a basic block into this form
//! and caches the result keyed by the block's entry address.
//!
//! The lowering is *purely* a re-arrangement of information already present
//! in the [`Insn`]: it must enumerate exactly the source registers the
//! reference interpreter's readiness check consults, no more and no fewer,
//! or the two paths would stall on different cycles and diverge. The
//! `block_dispatch_equivalence` suite in `cobra-machine` property-tests that
//! invariant end to end.

use crate::insn::{Insn, Op};

/// One source register reference, pre-resolved from the operand fields.
/// Register numbers are *virtual*; the core still maps them through the
/// rotating-register bases at execution time (rotation is runtime state and
/// cannot be baked in at lowering time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrcReg {
    /// General register read (integer scoreboard).
    Gr(u8),
    /// Floating-point register read (FP scoreboard).
    Fr(u8),
}

/// Maximum number of explicit source registers any [`Op`] reads (the
/// three-input `fma.d`/`fms.d` and `cmpxchg8`).
pub const MAX_SRCS: usize = 3;

/// Dispatch class of a micro-op: the handful of simple integer and branch
/// shapes the block engine executes through one specialized arm each, with
/// operands pre-extracted into the flat [`MicroOp`] fields. Everything else
/// is [`OpClass::Other`] and goes through the full interpreter arm. The
/// specialized arms must be semantically byte-identical to the interpreter
/// (property-tested by `block_dispatch_equivalence`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpClass {
    /// `add d = a, b` (wrapping).
    Add,
    /// `sub d = a, b` (wrapping).
    Sub,
    /// `adds d = imm, a` (wrapping; immediate pre-widened to i64).
    AddI,
    /// `movl d = imm`.
    MovI,
    /// `nop` on any unit: consumes the slot, no effects either way.
    Nop,
    /// `br.cloop target` (target pre-widened into `imm`; ignores qp).
    BrCloop,
    /// `cmp.rel pA,pB = a, b` (predicate pair write; `rel`/`p2` read from
    /// the embedded [`Insn`] at dispatch).
    Cmp,
    /// `cmp.rel pA,pB = imm, a` (immediate pre-widened into `imm`).
    CmpI,
    /// `(qp) br.cond target` (target pre-widened into `imm`).
    BrCond,
    /// `shl d = a, count` (count pre-extracted into `b`).
    ShlI,
    /// `shr.u d = a, count` (logical right shift, count in `b`).
    ShrI,
    /// `shr d = a, count` (arithmetic right shift, count in `b`).
    SarI,
    /// `fadd.d d = a, b` (FP register numbers in `a`/`b`).
    FaddD,
    /// `fmul.d d = a, b` (FP register numbers in `a`/`b`).
    FmulD,
    /// Full interpreter dispatch.
    Other,
}

/// A pre-decoded instruction: the instruction itself plus everything the
/// dispatch loop needs without re-matching on the opcode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// The decoded instruction (executed exactly as the reference path would).
    pub insn: Insn,
    /// Explicit source registers; only the first [`Self::nsrcs`] are valid.
    /// The qualifying predicate is *not* listed — every instruction reads it
    /// and the dispatch loop checks it unconditionally.
    pub srcs: [SrcReg; MAX_SRCS],
    /// Number of valid entries in [`Self::srcs`].
    pub nsrcs: u8,
    flags: u8,
    /// Dispatch class; operands of specialized classes are pre-extracted
    /// into [`Self::d`], [`Self::a`], [`Self::b`] and [`Self::imm`].
    pub class: OpClass,
    /// Destination register of the specialized classes.
    pub d: u8,
    /// First general-register source of the specialized classes.
    pub a: u8,
    /// Second general-register source of the specialized classes.
    pub b: u8,
    /// Immediate operand (or branch target) of the specialized classes,
    /// pre-widened to i64.
    pub imm: i64,
}

/// Flag: the op may access the coherent memory system (loads, stores,
/// prefetches, atomics) and therefore accrue snoop-stall penalties on other
/// CPUs. `hlt` only *queries* the store buffer, it performs no access.
const F_MEM: u8 = 1 << 0;
/// Flag: the op can transfer control or end the thread (all branch flavours
/// and `hlt`) — it terminates a basic block.
const F_BLOCK_END: u8 = 1 << 1;

impl MicroOp {
    /// Lower one instruction. Infallible: every decodable [`Insn`] has a
    /// micro-op form.
    pub fn lower(insn: Insn) -> MicroOp {
        use Op::*;
        let mut srcs = [SrcReg::Gr(0); MAX_SRCS];
        let mut n = 0usize;
        let mut flags = 0u8;
        {
            let mut push = |s: SrcReg| {
                srcs[n] = s;
                n += 1;
            };
            match insn.op {
                Ld8 { base, .. } | Ldfd { base, .. } | Lfetch { base, .. } => {
                    push(SrcReg::Gr(base));
                    flags |= F_MEM;
                }
                St8 { src, base, .. } => {
                    push(SrcReg::Gr(src));
                    push(SrcReg::Gr(base));
                    flags |= F_MEM;
                }
                Stfd { src, base, .. } => {
                    push(SrcReg::Fr(src));
                    push(SrcReg::Gr(base));
                    flags |= F_MEM;
                }
                FetchAdd8 { base, .. } => {
                    push(SrcReg::Gr(base));
                    flags |= F_MEM;
                }
                Cmpxchg8 { base, new, cmp, .. } => {
                    push(SrcReg::Gr(base));
                    push(SrcReg::Gr(new));
                    push(SrcReg::Gr(cmp));
                    flags |= F_MEM;
                }
                FmaD { f1, f2, f3, .. } | FmsD { f1, f2, f3, .. } => {
                    push(SrcReg::Fr(f1));
                    push(SrcReg::Fr(f2));
                    push(SrcReg::Fr(f3));
                }
                FaddD { f1, f2, .. }
                | FsubD { f1, f2, .. }
                | FmulD { f1, f2, .. }
                | FdivD { f1, f2, .. }
                | FcmpD { f1, f2, .. } => {
                    push(SrcReg::Fr(f1));
                    push(SrcReg::Fr(f2));
                }
                FsqrtD { f1, .. } | FabsD { f1, .. } | FnegD { f1, .. } => {
                    push(SrcReg::Fr(f1));
                }
                SetfD { src, .. } | SetfSig { src, .. } => push(SrcReg::Gr(src)),
                GetfD { src, .. }
                | GetfSig { src, .. }
                | FcvtXf { src, .. }
                | FcvtFxTrunc { src, .. } => push(SrcReg::Fr(src)),
                Add { r2, r3, .. }
                | Sub { r2, r3, .. }
                | Mul { r2, r3, .. }
                | And { r2, r3, .. }
                | Or { r2, r3, .. }
                | Xor { r2, r3, .. }
                | Cmp { r2, r3, .. } => {
                    push(SrcReg::Gr(r2));
                    push(SrcReg::Gr(r3));
                }
                AddI { src, .. }
                | AndI { src, .. }
                | ShlI { src, .. }
                | ShrI { src, .. }
                | SarI { src, .. } => push(SrcReg::Gr(src)),
                CmpI { r3, .. } => push(SrcReg::Gr(r3)),
                MovToLc { src } | MovToEc { src } | MovToB0 { src } => push(SrcReg::Gr(src)),
                MovI { .. }
                | MovFromLc { .. }
                | MovFromEc { .. }
                | MovFromB0 { .. }
                | Clrrrb
                | Nop { .. } => {}
                BrCond { .. }
                | BrCtop { .. }
                | BrCloop { .. }
                | BrWtop { .. }
                | BrCall { .. }
                | BrRet
                | Hlt => {
                    flags |= F_BLOCK_END;
                }
            }
        }
        let (class, d, a, b, imm) = match insn.op {
            Add { dest, r2, r3 } => (OpClass::Add, dest, r2, r3, 0),
            Sub { dest, r2, r3 } => (OpClass::Sub, dest, r2, r3, 0),
            AddI { dest, src, imm } => (OpClass::AddI, dest, src, 0, imm as i64),
            MovI { dest, imm } => (OpClass::MovI, dest, 0, 0, imm),
            Nop { .. } => (OpClass::Nop, 0, 0, 0, 0),
            BrCloop { target } => (OpClass::BrCloop, 0, 0, 0, target as i64),
            Cmp { p1, r2, r3, .. } => (OpClass::Cmp, p1, r2, r3, 0),
            CmpI { p1, imm, r3, .. } => (OpClass::CmpI, p1, r3, 0, imm as i64),
            BrCond { target } => (OpClass::BrCond, 0, 0, 0, target as i64),
            ShlI { dest, src, count } => (OpClass::ShlI, dest, src, count, 0),
            ShrI { dest, src, count } => (OpClass::ShrI, dest, src, count, 0),
            SarI { dest, src, count } => (OpClass::SarI, dest, src, count, 0),
            FaddD { dest, f1, f2 } => (OpClass::FaddD, dest, f1, f2, 0),
            FmulD { dest, f1, f2 } => (OpClass::FmulD, dest, f1, f2, 0),
            _ => (OpClass::Other, 0, 0, 0, 0),
        };
        MicroOp {
            insn,
            srcs,
            nsrcs: n as u8,
            flags,
            class,
            d,
            a,
            b,
            imm,
        }
    }

    /// The valid prefix of the source list.
    #[inline]
    pub fn sources(&self) -> &[SrcReg] {
        &self.srcs[..self.nsrcs as usize]
    }

    /// May this op access the coherent memory system?
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.flags & F_MEM != 0
    }

    /// Does this op terminate a basic block (branch or `hlt`)?
    #[inline]
    pub fn ends_block(&self) -> bool {
        self.flags & F_BLOCK_END != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::CmpRel;

    #[test]
    fn memory_ops_carry_the_mem_flag_and_base_sources() {
        let u = MicroOp::lower(Insn::new(Op::Ld8 {
            dest: 7,
            base: 4,
            post_inc: 8,
            bias: false,
        }));
        assert!(u.is_mem());
        assert!(!u.ends_block());
        assert_eq!(u.sources(), &[SrcReg::Gr(4)]);

        let u = MicroOp::lower(Insn::new(Op::Stfd {
            src: 6,
            base: 5,
            post_inc: 0,
        }));
        assert!(u.is_mem());
        assert_eq!(u.sources(), &[SrcReg::Fr(6), SrcReg::Gr(5)]);

        let u = MicroOp::lower(Insn::new(Op::Cmpxchg8 {
            dest: 7,
            base: 4,
            new: 5,
            cmp: 6,
        }));
        assert_eq!(u.sources(), &[SrcReg::Gr(4), SrcReg::Gr(5), SrcReg::Gr(6)]);
    }

    #[test]
    fn fp_ops_list_fp_sources() {
        let u = MicroOp::lower(Insn::new(Op::FmaD {
            dest: 9,
            f1: 6,
            f2: 7,
            f3: 8,
        }));
        assert!(!u.is_mem());
        assert_eq!(u.sources(), &[SrcReg::Fr(6), SrcReg::Fr(7), SrcReg::Fr(8)]);
    }

    #[test]
    fn branches_and_hlt_end_blocks_without_explicit_sources() {
        for op in [
            Op::BrCond { target: 3 },
            Op::BrCtop { target: 3 },
            Op::BrCloop { target: 3 },
            Op::BrWtop { target: 3 },
            Op::BrCall { target: 3 },
            Op::BrRet,
            Op::Hlt,
        ] {
            let u = MicroOp::lower(Insn::new(op));
            assert!(u.ends_block(), "{op:?} must end a block");
            assert!(u.sources().is_empty());
            assert!(!u.is_mem());
        }
        // Straight-line ops do not end blocks.
        let u = MicroOp::lower(Insn::new(Op::CmpI {
            p1: 6,
            p2: 7,
            rel: CmpRel::Lt,
            imm: 3,
            r3: 4,
        }));
        assert!(!u.ends_block());
        assert_eq!(u.sources(), &[SrcReg::Gr(4)]);
    }

    #[test]
    fn specialized_classes_pre_extract_their_operands() {
        let u = MicroOp::lower(Insn::new(Op::AddI {
            dest: 5,
            src: 6,
            imm: -3,
        }));
        assert_eq!((u.class, u.d, u.a, u.imm), (OpClass::AddI, 5, 6, -3));

        let u = MicroOp::lower(Insn::new(Op::Add {
            dest: 7,
            r2: 8,
            r3: 9,
        }));
        assert_eq!((u.class, u.d, u.a, u.b), (OpClass::Add, 7, 8, 9));

        let u = MicroOp::lower(Insn::new(Op::MovI {
            dest: 4,
            imm: 1 << 40,
        }));
        assert_eq!((u.class, u.d, u.imm), (OpClass::MovI, 4, 1 << 40));

        let u = MicroOp::lower(Insn::new(Op::BrCloop { target: 12 }));
        assert_eq!((u.class, u.imm), (OpClass::BrCloop, 12));

        // Anything with its own interpreter-side complexity stays generic.
        let u = MicroOp::lower(Insn::new(Op::Mul {
            dest: 3,
            r2: 4,
            r3: 5,
        }));
        assert_eq!(u.class, OpClass::Other);
    }

    /// The widened classes (compare, conditional branch, shifts, FP
    /// add/multiply) pre-extract their operands like `Add`/`AddI` do.
    #[test]
    fn widened_classes_pre_extract_their_operands() {
        let u = MicroOp::lower(Insn::new(Op::Cmp {
            p1: 6,
            p2: 7,
            rel: CmpRel::Lt,
            r2: 4,
            r3: 5,
        }));
        assert_eq!((u.class, u.d, u.a, u.b), (OpClass::Cmp, 6, 4, 5));

        let u = MicroOp::lower(Insn::new(Op::CmpI {
            p1: 8,
            p2: 9,
            rel: CmpRel::Ge,
            imm: -12,
            r3: 3,
        }));
        assert_eq!((u.class, u.d, u.a, u.imm), (OpClass::CmpI, 8, 3, -12));

        let u = MicroOp::lower(Insn::new(Op::BrCond { target: 77 }));
        assert_eq!((u.class, u.imm), (OpClass::BrCond, 77));
        assert!(u.ends_block());

        for (op, class) in [
            (
                Op::ShlI {
                    dest: 4,
                    src: 5,
                    count: 3,
                },
                OpClass::ShlI,
            ),
            (
                Op::ShrI {
                    dest: 4,
                    src: 5,
                    count: 3,
                },
                OpClass::ShrI,
            ),
            (
                Op::SarI {
                    dest: 4,
                    src: 5,
                    count: 3,
                },
                OpClass::SarI,
            ),
        ] {
            let u = MicroOp::lower(Insn::new(op));
            assert_eq!((u.class, u.d, u.a, u.b), (class, 4, 5, 3));
            assert_eq!(u.sources(), &[SrcReg::Gr(5)]);
        }

        let u = MicroOp::lower(Insn::new(Op::FaddD {
            dest: 9,
            f1: 6,
            f2: 7,
        }));
        assert_eq!((u.class, u.d, u.a, u.b), (OpClass::FaddD, 9, 6, 7));
        assert_eq!(u.sources(), &[SrcReg::Fr(6), SrcReg::Fr(7)]);

        let u = MicroOp::lower(Insn::new(Op::FmulD {
            dest: 10,
            f1: 7,
            f2: 8,
        }));
        assert_eq!((u.class, u.d, u.a, u.b), (OpClass::FmulD, 10, 7, 8));
    }
}
