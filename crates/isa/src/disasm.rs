//! Textual disassembly in icc-like syntax.
//!
//! Used by the harness to regenerate the paper's Figure 2 (the icc-generated
//! Itanium assembly of the DAXPY kernel) from our `minicc` binary, and by
//! COBRA's report facility to show what was rewritten.

use std::fmt::Write as _;

use crate::image::CodeImage;
use crate::insn::{Insn, LfetchHint, Op, Unit};
use crate::{CodeAddr, SLOTS_PER_BUNDLE};

/// Render one instruction in assembly syntax (without its predicate prefix).
fn format_op(op: &Op) -> String {
    match *op {
        Op::Ld8 {
            dest,
            base,
            post_inc,
            bias,
        } => {
            let b = if bias { ".bias" } else { "" };
            with_postinc(format!("ld8{b} r{dest}=[r{base}]"), post_inc)
        }
        Op::St8 {
            src,
            base,
            post_inc,
        } => with_postinc(format!("st8 [r{base}]=r{src}"), post_inc),
        Op::Ldfd {
            dest,
            base,
            post_inc,
        } => with_postinc(format!("ldfd f{dest}=[r{base}]"), post_inc),
        Op::Stfd {
            src,
            base,
            post_inc,
        } => with_postinc(format!("stfd [r{base}]=f{src}"), post_inc),
        Op::Lfetch {
            base,
            post_inc,
            hint,
            excl,
        } => {
            let h = match hint {
                LfetchHint::None => "",
                LfetchHint::Nt1 => ".nt1",
                LfetchHint::Nt2 => ".nt2",
                LfetchHint::Nta => ".nta",
            };
            let e = if excl { ".excl" } else { "" };
            with_postinc(format!("lfetch{h}{e} [r{base}]"), post_inc)
        }
        Op::FetchAdd8 { dest, base, inc } => {
            format!("fetchadd8.acq r{dest}=[r{base}],{inc}")
        }
        Op::Cmpxchg8 {
            dest,
            base,
            new,
            cmp,
        } => {
            format!("cmpxchg8.acq r{dest}=[r{base}],r{new} ? r{cmp}")
        }
        Op::FmaD { dest, f1, f2, f3 } => format!("fma.d f{dest}=f{f1},f{f2},f{f3}"),
        Op::FmsD { dest, f1, f2, f3 } => format!("fms.d f{dest}=f{f1},f{f2},f{f3}"),
        Op::FaddD { dest, f1, f2 } => format!("fadd.d f{dest}=f{f1},f{f2}"),
        Op::FsubD { dest, f1, f2 } => format!("fsub.d f{dest}=f{f1},f{f2}"),
        Op::FmulD { dest, f1, f2 } => format!("fmul.d f{dest}=f{f1},f{f2}"),
        Op::FdivD { dest, f1, f2 } => format!("fdiv.d f{dest}=f{f1},f{f2}"),
        Op::FsqrtD { dest, f1 } => format!("fsqrt.d f{dest}=f{f1}"),
        Op::FabsD { dest, f1 } => format!("fabs f{dest}=f{f1}"),
        Op::FnegD { dest, f1 } => format!("fneg f{dest}=f{f1}"),
        Op::FcmpD {
            p1,
            p2,
            rel,
            f1,
            f2,
        } => {
            format!("fcmp.{} p{p1},p{p2}=f{f1},f{f2}", rel.mnemonic())
        }
        Op::SetfD { dest, src } => format!("setf.d f{dest}=r{src}"),
        Op::GetfD { dest, src } => format!("getf.d r{dest}=f{src}"),
        Op::SetfSig { dest, src } => format!("setf.sig f{dest}=r{src}"),
        Op::GetfSig { dest, src } => format!("getf.sig r{dest}=f{src}"),
        Op::FcvtXf { dest, src } => format!("fcvt.xf f{dest}=f{src}"),
        Op::FcvtFxTrunc { dest, src } => format!("fcvt.fx.trunc f{dest}=f{src}"),
        Op::Add { dest, r2, r3 } => {
            if r3 == 0 {
                format!("mov r{dest}=r{r2}")
            } else {
                format!("add r{dest}=r{r2},r{r3}")
            }
        }
        Op::Sub { dest, r2, r3 } => format!("sub r{dest}=r{r2},r{r3}"),
        Op::AddI { dest, src, imm } => format!("adds r{dest}={imm},r{src}"),
        Op::Mul { dest, r2, r3 } => format!("xmpy.l r{dest}=r{r2},r{r3}"),
        Op::ShlI { dest, src, count } => format!("shl r{dest}=r{src},{count}"),
        Op::ShrI { dest, src, count } => format!("shr.u r{dest}=r{src},{count}"),
        Op::SarI { dest, src, count } => format!("shr r{dest}=r{src},{count}"),
        Op::And { dest, r2, r3 } => format!("and r{dest}=r{r2},r{r3}"),
        Op::Or { dest, r2, r3 } => format!("or r{dest}=r{r2},r{r3}"),
        Op::Xor { dest, r2, r3 } => format!("xor r{dest}=r{r2},r{r3}"),
        Op::AndI { dest, src, imm } => format!("and r{dest}={imm},r{src}"),
        Op::MovI { dest, imm } => format!("movl r{dest}={imm:#x}"),
        Op::Cmp {
            p1,
            p2,
            rel,
            r2,
            r3,
        } => {
            format!("cmp.{} p{p1},p{p2}=r{r2},r{r3}", rel.mnemonic())
        }
        Op::CmpI {
            p1,
            p2,
            rel,
            imm,
            r3,
        } => {
            format!("cmp.{} p{p1},p{p2}={imm},r{r3}", rel.mnemonic())
        }
        Op::BrCond { target } => format!("br.cond.sptk .L{target}"),
        Op::BrCtop { target } => format!("br.ctop.sptk .L{target}"),
        Op::BrCloop { target } => format!("br.cloop.sptk .L{target}"),
        Op::BrWtop { target } => format!("br.wtop.sptk .L{target}"),
        Op::BrCall { target } => format!("br.call.sptk b0=.L{target}"),
        Op::BrRet => "br.ret.sptk b0".to_string(),
        Op::MovToLc { src } => format!("mov ar.lc=r{src}"),
        Op::MovToEc { src } => format!("mov ar.ec=r{src}"),
        Op::MovFromLc { dest } => format!("mov r{dest}=ar.lc"),
        Op::MovFromEc { dest } => format!("mov r{dest}=ar.ec"),
        Op::MovToB0 { src } => format!("mov b0=r{src}"),
        Op::MovFromB0 { dest } => format!("mov r{dest}=b0"),
        Op::Clrrrb => "clrrrb".to_string(),
        Op::Nop { unit } => format!("nop.{} 0", unit_letter(unit)),
        Op::Hlt => "hlt".to_string(),
    }
}

fn with_postinc(body: String, post_inc: i32) -> String {
    if post_inc != 0 {
        format!("{body},{post_inc}")
    } else {
        body
    }
}

fn unit_letter(unit: Unit) -> char {
    match unit {
        Unit::M => 'm',
        Unit::I => 'i',
        Unit::F => 'f',
        Unit::B => 'b',
    }
}

/// Render one instruction, including its `(pN)` predicate prefix.
pub fn format_insn(insn: &Insn) -> String {
    if insn.qp != 0 {
        format!("(p{}) {}", insn.qp, format_op(&insn.op))
    } else {
        format_op(&insn.op)
    }
}

/// Bundle template string (e.g. `.mmf`) for three slot units.
fn template(units: &[Unit]) -> String {
    let mut s = String::from(".");
    for u in units {
        s.push(unit_letter(*u));
    }
    s
}

/// Disassemble `[start, end)` of an image as icc-style bundles with labels
/// and `//` comments, reproducing the presentation of the paper's Figure 2.
pub fn disasm_range(image: &CodeImage, start: CodeAddr, end: CodeAddr) -> String {
    let mut out = String::new();
    let symbols: Vec<(CodeAddr, &str)> = {
        let mut v: Vec<(CodeAddr, &str)> = image.symbols().map(|(n, a)| (a, n)).collect();
        v.sort();
        v
    };
    let mut addr = start - start % SLOTS_PER_BUNDLE;
    while addr < end.min(image.len()) {
        for (sym_addr, name) in &symbols {
            if *sym_addr == addr {
                let _ = writeln!(out, ".{name}:");
            }
        }
        let bundle_end = (addr + SLOTS_PER_BUNDLE).min(image.len());
        let insns: Vec<Insn> = (addr..bundle_end)
            .map(|a| image.insn(a).expect("undecodable word in image"))
            .collect();
        let units: Vec<Unit> = insns.iter().map(|i| i.unit()).collect();
        let _ = writeln!(out, "{{ {}", template(&units));
        for (i, insn) in insns.iter().enumerate() {
            let a = addr + i as u32;
            let text = format_insn(insn);
            match image.comment(a) {
                Some(c) => {
                    let _ = writeln!(out, "  {text:<40} // {c}");
                }
                None => {
                    let _ = writeln!(out, "  {text}");
                }
            }
        }
        let _ = writeln!(out, "}}");
        addr = bundle_end;
    }
    out
}

/// Disassemble the whole original text segment.
pub fn disasm_image(image: &CodeImage) -> String {
    disasm_range(image, 0, image.main_len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::insn::CmpRel;

    #[test]
    fn formats_figure2_style_instructions() {
        let lf = Insn::pred(
            16,
            Op::Lfetch {
                base: 43,
                post_inc: 0,
                hint: LfetchHint::Nt1,
                excl: false,
            },
        );
        assert_eq!(format_insn(&lf), "(p16) lfetch.nt1 [r43]");

        let lfx = Insn::new(Op::Lfetch {
            base: 43,
            post_inc: 128,
            hint: LfetchHint::Nt1,
            excl: true,
        });
        assert_eq!(format_insn(&lfx), "lfetch.nt1.excl [r43],128");

        let ld = Insn::pred(
            16,
            Op::Ldfd {
                dest: 32,
                base: 2,
                post_inc: 8,
            },
        );
        assert_eq!(format_insn(&ld), "(p16) ldfd f32=[r2],8");

        let fma = Insn::pred(
            21,
            Op::FmaD {
                dest: 44,
                f1: 6,
                f2: 37,
                f3: 43,
            },
        );
        assert_eq!(format_insn(&fma), "(p21) fma.d f44=f6,f37,f43");

        let st = Insn::pred(
            23,
            Op::Stfd {
                src: 46,
                base: 40,
                post_inc: 0,
            },
        );
        assert_eq!(format_insn(&st), "(p23) stfd [r40]=f46");

        assert_eq!(
            format_insn(&Insn::new(Op::Nop { unit: Unit::B })),
            "nop.b 0"
        );
        assert_eq!(
            format_insn(&Insn::new(Op::Cmp {
                p1: 6,
                p2: 7,
                rel: CmpRel::Ltu,
                r2: 1,
                r3: 2
            })),
            "cmp.ltu p6,p7=r1,r2"
        );
        assert_eq!(
            format_insn(&Insn::new(Op::Ld8 {
                dest: 3,
                base: 4,
                post_inc: 0,
                bias: true
            })),
            "ld8.bias r3=[r4]"
        );
    }

    #[test]
    fn bundle_rendering_includes_template_and_comments() {
        let mut a = Assembler::new();
        a.symbol("b1_22");
        a.comment("load x[i], i++");
        a.ldfd(16, 32, 2, 8);
        a.lfetch_nt1(16, 43, 0);
        a.nop(Unit::B);
        let img = a.finish();
        let text = disasm_image(&img);
        assert!(text.contains(".b1_22:"), "{text}");
        assert!(text.contains("{ .mmb"), "{text}");
        assert!(text.contains("// load x[i], i++"), "{text}");
        assert!(text.contains("(p16) lfetch.nt1 [r43]"), "{text}");
    }

    #[test]
    fn every_op_formats_without_panicking() {
        use crate::encode::{decode, encode};
        // Round-trip a broad instruction sample through format to ensure no
        // panics and non-empty output.
        let ops = [
            Op::FdivD {
                dest: 1,
                f1: 2,
                f2: 3,
            },
            Op::FsqrtD { dest: 1, f1: 2 },
            Op::BrRet,
            Op::Clrrrb,
            Op::Hlt,
            Op::MovFromEc { dest: 9 },
            Op::MovToB0 { src: 9 },
            Op::GetfSig { dest: 1, src: 2 },
            Op::Xor {
                dest: 1,
                r2: 2,
                r3: 3,
            },
        ];
        for op in ops {
            let insn = Insn::new(op);
            let s = format_insn(&insn);
            assert!(!s.is_empty());
            // and the encoding round-trips
            assert_eq!(decode(encode(&insn)).unwrap(), insn);
        }
    }
}
