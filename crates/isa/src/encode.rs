//! Binary encoding: one instruction slot per 64-bit word.
//!
//! COBRA is a *binary* optimizer — the framework reads instruction words out
//! of a running program's text segment, decides which ones to change, and
//! writes new words back (into the original text for `noprefetch`, into a
//! trace cache for relocated loops). This module defines the concrete word
//! format those rewrites operate on, with an exact round-trip guarantee:
//! `decode(encode(i)) == Ok(i)` for every well-formed [`Insn`].
//!
//! ## Word layout
//!
//! ```text
//!  63      56 55    50 49    43 42    36 35    29 28    22 21           0
//! +----------+--------+--------+--------+--------+--------+--------------+
//! |  opcode  |   qp   |   a    |   b    |   c    |   d    |    imm22     |
//! +----------+--------+--------+--------+--------+--------+--------------+
//! ```
//!
//! * `a`–`d` are 7-bit register/operand fields.
//! * `imm22` is a 22-bit two's-complement immediate (post-increments,
//!   `adds`/`cmp` immediates, comparison relations).
//! * Branch instructions place a 32-bit absolute slot address in bits
//!   `[31:0]` (long-branch form, so trace-cache targets anywhere in the image
//!   are reachable — the property COBRA's code deployment relies on).
//! * `movl` places a 43-bit sign-extended immediate in bits `[42:0]`.
//!
//! Encoding panics on out-of-range operands (those are code-generator bugs);
//! decoding is total over `u64` and returns [`DecodeError`] on malformed
//! words, which the patch validator in [`crate::CodeImage`] uses to reject
//! corrupt patches.

use crate::insn::{CmpRel, Insn, LfetchHint, Op, Unit};

/// Why a word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A predicate-register field exceeded `p63`.
    BadPredicate(u8),
    /// An enumerated sub-field (unit, hint, comparison relation) was invalid.
    BadSubfield(&'static str, u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadPredicate(p) => write!(f, "predicate register p{p} out of range"),
            DecodeError::BadSubfield(what, v) => write!(f, "invalid {what} field value {v}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode bytes. Gaps group families; values are stable ABI for the tests.
mod opc {
    pub const LD8: u8 = 1;
    pub const ST8: u8 = 2;
    pub const LDFD: u8 = 3;
    pub const STFD: u8 = 4;
    pub const LFETCH: u8 = 5;
    pub const FETCHADD8: u8 = 6;
    pub const CMPXCHG8: u8 = 7;

    pub const FMA_D: u8 = 10;
    pub const FMS_D: u8 = 11;
    pub const FADD_D: u8 = 12;
    pub const FSUB_D: u8 = 13;
    pub const FMUL_D: u8 = 14;
    pub const FDIV_D: u8 = 15;
    pub const FSQRT_D: u8 = 16;
    pub const FABS_D: u8 = 17;
    pub const FNEG_D: u8 = 18;
    pub const FCMP_D: u8 = 19;
    pub const SETF_D: u8 = 20;
    pub const GETF_D: u8 = 21;
    pub const SETF_SIG: u8 = 22;
    pub const GETF_SIG: u8 = 23;
    pub const FCVT_XF: u8 = 24;
    pub const FCVT_FX_TRUNC: u8 = 25;

    pub const ADD: u8 = 30;
    pub const SUB: u8 = 31;
    pub const ADD_I: u8 = 32;
    pub const MUL: u8 = 33;
    pub const SHL_I: u8 = 34;
    pub const SHR_I: u8 = 35;
    pub const SAR_I: u8 = 36;
    pub const AND: u8 = 37;
    pub const OR: u8 = 38;
    pub const XOR: u8 = 39;
    pub const AND_I: u8 = 40;
    pub const MOV_I: u8 = 41;
    pub const CMP: u8 = 42;
    pub const CMP_I: u8 = 43;

    pub const BR_COND: u8 = 50;
    pub const BR_CTOP: u8 = 51;
    pub const BR_CLOOP: u8 = 52;
    pub const BR_WTOP: u8 = 53;
    pub const BR_CALL: u8 = 54;
    pub const BR_RET: u8 = 55;

    pub const MOV_TO_LC: u8 = 60;
    pub const MOV_TO_EC: u8 = 61;
    pub const MOV_FROM_LC: u8 = 62;
    pub const MOV_FROM_EC: u8 = 63;
    pub const MOV_TO_B0: u8 = 64;
    pub const MOV_FROM_B0: u8 = 65;
    pub const CLRRRB: u8 = 66;

    pub const NOP: u8 = 70;
    pub const HLT: u8 = 71;
}

const IMM22_MIN: i64 = -(1 << 21);
const IMM22_MAX: i64 = (1 << 21) - 1;
/// Inclusive bound of the `movl` immediate (43-bit signed).
pub const MOVL_IMM_MIN: i64 = -(1 << 42);
/// Inclusive bound of the `movl` immediate (43-bit signed).
pub const MOVL_IMM_MAX: i64 = (1 << 42) - 1;

#[inline]
fn field(v: u64, hi: u32, lo: u32) -> u64 {
    (v >> lo) & ((1u64 << (hi - lo + 1)) - 1)
}

#[inline]
fn put_reg(r: u8) -> u64 {
    assert!(r < 128, "register number {r} out of range");
    r as u64
}

#[inline]
fn put_pr(p: u8) -> u64 {
    assert!(p < 64, "predicate register p{p} out of range");
    p as u64
}

#[inline]
fn put_imm22(imm: i64) -> u64 {
    assert!(
        (IMM22_MIN..=IMM22_MAX).contains(&imm),
        "immediate {imm} does not fit in 22 bits"
    );
    (imm as u64) & 0x3f_ffff
}

#[inline]
fn get_imm22(word: u64) -> i32 {
    let raw = field(word, 21, 0) as i64;
    // Sign-extend from bit 21.
    ((raw << 42) >> 42) as i32
}

fn rel_code(rel: CmpRel) -> u64 {
    match rel {
        CmpRel::Eq => 0,
        CmpRel::Ne => 1,
        CmpRel::Lt => 2,
        CmpRel::Le => 3,
        CmpRel::Gt => 4,
        CmpRel::Ge => 5,
        CmpRel::Ltu => 6,
        CmpRel::Geu => 7,
    }
}

fn rel_decode(code: u64) -> Result<CmpRel, DecodeError> {
    Ok(match code {
        0 => CmpRel::Eq,
        1 => CmpRel::Ne,
        2 => CmpRel::Lt,
        3 => CmpRel::Le,
        4 => CmpRel::Gt,
        5 => CmpRel::Ge,
        6 => CmpRel::Ltu,
        7 => CmpRel::Geu,
        other => return Err(DecodeError::BadSubfield("cmp relation", other)),
    })
}

fn hint_code(hint: LfetchHint) -> u64 {
    match hint {
        LfetchHint::None => 0,
        LfetchHint::Nt1 => 1,
        LfetchHint::Nt2 => 2,
        LfetchHint::Nta => 3,
    }
}

fn hint_decode(code: u64) -> LfetchHint {
    match code {
        1 => LfetchHint::Nt1,
        2 => LfetchHint::Nt2,
        3 => LfetchHint::Nta,
        _ => LfetchHint::None,
    }
}

fn unit_code(unit: Unit) -> u64 {
    match unit {
        Unit::M => 0,
        Unit::I => 1,
        Unit::F => 2,
        Unit::B => 3,
    }
}

fn unit_decode(code: u64) -> Result<Unit, DecodeError> {
    Ok(match code {
        0 => Unit::M,
        1 => Unit::I,
        2 => Unit::F,
        3 => Unit::B,
        other => return Err(DecodeError::BadSubfield("nop unit", other)),
    })
}

#[inline]
fn pack(opcode: u8, qp: u8, a: u64, b: u64, c: u64, d: u64, imm: u64) -> u64 {
    debug_assert!(a < 128 && b < 128 && c < 128 && d < 128);
    debug_assert!(imm <= 0x3f_ffff);
    ((opcode as u64) << 56)
        | ((put_pr(qp)) << 50)
        | (a << 43)
        | (b << 36)
        | (c << 29)
        | (d << 22)
        | imm
}

#[inline]
fn pack_branch(opcode: u8, qp: u8, target: u32) -> u64 {
    ((opcode as u64) << 56) | (put_pr(qp) << 50) | target as u64
}

/// Encode an instruction into its 64-bit word.
///
/// # Panics
///
/// Panics when a register number or immediate is out of range for its field —
/// such values can only come from a code-generator bug, never from data.
pub fn encode(insn: &Insn) -> u64 {
    let qp = insn.qp;
    match insn.op {
        Op::Ld8 {
            dest,
            base,
            post_inc,
            bias,
        } => pack(
            opc::LD8,
            qp,
            put_reg(dest),
            put_reg(base),
            bias as u64,
            0,
            put_imm22(post_inc as i64),
        ),
        Op::St8 {
            src,
            base,
            post_inc,
        } => pack(
            opc::ST8,
            qp,
            put_reg(src),
            put_reg(base),
            0,
            0,
            put_imm22(post_inc as i64),
        ),
        Op::Ldfd {
            dest,
            base,
            post_inc,
        } => pack(
            opc::LDFD,
            qp,
            put_reg(dest),
            put_reg(base),
            0,
            0,
            put_imm22(post_inc as i64),
        ),
        Op::Stfd {
            src,
            base,
            post_inc,
        } => pack(
            opc::STFD,
            qp,
            put_reg(src),
            put_reg(base),
            0,
            0,
            put_imm22(post_inc as i64),
        ),
        Op::Lfetch {
            base,
            post_inc,
            hint,
            excl,
        } => pack(
            opc::LFETCH,
            qp,
            put_reg(base),
            hint_code(hint) | ((excl as u64) << 2),
            0,
            0,
            put_imm22(post_inc as i64),
        ),
        Op::FetchAdd8 { dest, base, inc } => pack(
            opc::FETCHADD8,
            qp,
            put_reg(dest),
            put_reg(base),
            0,
            0,
            put_imm22(inc as i64),
        ),
        Op::Cmpxchg8 {
            dest,
            base,
            new,
            cmp,
        } => pack(
            opc::CMPXCHG8,
            qp,
            put_reg(dest),
            put_reg(base),
            put_reg(new),
            put_reg(cmp),
            0,
        ),
        Op::FmaD { dest, f1, f2, f3 } => pack(
            opc::FMA_D,
            qp,
            put_reg(dest),
            put_reg(f1),
            put_reg(f2),
            put_reg(f3),
            0,
        ),
        Op::FmsD { dest, f1, f2, f3 } => pack(
            opc::FMS_D,
            qp,
            put_reg(dest),
            put_reg(f1),
            put_reg(f2),
            put_reg(f3),
            0,
        ),
        Op::FaddD { dest, f1, f2 } => pack(
            opc::FADD_D,
            qp,
            put_reg(dest),
            put_reg(f1),
            put_reg(f2),
            0,
            0,
        ),
        Op::FsubD { dest, f1, f2 } => pack(
            opc::FSUB_D,
            qp,
            put_reg(dest),
            put_reg(f1),
            put_reg(f2),
            0,
            0,
        ),
        Op::FmulD { dest, f1, f2 } => pack(
            opc::FMUL_D,
            qp,
            put_reg(dest),
            put_reg(f1),
            put_reg(f2),
            0,
            0,
        ),
        Op::FdivD { dest, f1, f2 } => pack(
            opc::FDIV_D,
            qp,
            put_reg(dest),
            put_reg(f1),
            put_reg(f2),
            0,
            0,
        ),
        Op::FsqrtD { dest, f1 } => pack(opc::FSQRT_D, qp, put_reg(dest), put_reg(f1), 0, 0, 0),
        Op::FabsD { dest, f1 } => pack(opc::FABS_D, qp, put_reg(dest), put_reg(f1), 0, 0, 0),
        Op::FnegD { dest, f1 } => pack(opc::FNEG_D, qp, put_reg(dest), put_reg(f1), 0, 0, 0),
        Op::FcmpD {
            p1,
            p2,
            rel,
            f1,
            f2,
        } => pack(
            opc::FCMP_D,
            qp,
            put_pr(p1),
            put_pr(p2),
            put_reg(f1),
            put_reg(f2),
            rel_code(rel),
        ),
        Op::SetfD { dest, src } => pack(opc::SETF_D, qp, put_reg(dest), put_reg(src), 0, 0, 0),
        Op::GetfD { dest, src } => pack(opc::GETF_D, qp, put_reg(dest), put_reg(src), 0, 0, 0),
        Op::SetfSig { dest, src } => pack(opc::SETF_SIG, qp, put_reg(dest), put_reg(src), 0, 0, 0),
        Op::GetfSig { dest, src } => pack(opc::GETF_SIG, qp, put_reg(dest), put_reg(src), 0, 0, 0),
        Op::FcvtXf { dest, src } => pack(opc::FCVT_XF, qp, put_reg(dest), put_reg(src), 0, 0, 0),
        Op::FcvtFxTrunc { dest, src } => {
            pack(opc::FCVT_FX_TRUNC, qp, put_reg(dest), put_reg(src), 0, 0, 0)
        }
        Op::Add { dest, r2, r3 } => {
            pack(opc::ADD, qp, put_reg(dest), put_reg(r2), put_reg(r3), 0, 0)
        }
        Op::Sub { dest, r2, r3 } => {
            pack(opc::SUB, qp, put_reg(dest), put_reg(r2), put_reg(r3), 0, 0)
        }
        Op::AddI { dest, src, imm } => pack(
            opc::ADD_I,
            qp,
            put_reg(dest),
            put_reg(src),
            0,
            0,
            put_imm22(imm as i64),
        ),
        Op::Mul { dest, r2, r3 } => {
            pack(opc::MUL, qp, put_reg(dest), put_reg(r2), put_reg(r3), 0, 0)
        }
        Op::ShlI { dest, src, count } => pack(
            opc::SHL_I,
            qp,
            put_reg(dest),
            put_reg(src),
            {
                assert!(count < 64, "shift count {count} out of range");
                count as u64
            },
            0,
            0,
        ),
        Op::ShrI { dest, src, count } => pack(
            opc::SHR_I,
            qp,
            put_reg(dest),
            put_reg(src),
            {
                assert!(count < 64, "shift count {count} out of range");
                count as u64
            },
            0,
            0,
        ),
        Op::SarI { dest, src, count } => pack(
            opc::SAR_I,
            qp,
            put_reg(dest),
            put_reg(src),
            {
                assert!(count < 64, "shift count {count} out of range");
                count as u64
            },
            0,
            0,
        ),
        Op::And { dest, r2, r3 } => {
            pack(opc::AND, qp, put_reg(dest), put_reg(r2), put_reg(r3), 0, 0)
        }
        Op::Or { dest, r2, r3 } => pack(opc::OR, qp, put_reg(dest), put_reg(r2), put_reg(r3), 0, 0),
        Op::Xor { dest, r2, r3 } => {
            pack(opc::XOR, qp, put_reg(dest), put_reg(r2), put_reg(r3), 0, 0)
        }
        Op::AndI { dest, src, imm } => pack(
            opc::AND_I,
            qp,
            put_reg(dest),
            put_reg(src),
            0,
            0,
            put_imm22(imm as i64),
        ),
        Op::MovI { dest, imm } => {
            assert!(
                (MOVL_IMM_MIN..=MOVL_IMM_MAX).contains(&imm),
                "movl immediate {imm} does not fit in 43 bits"
            );
            ((opc::MOV_I as u64) << 56)
                | (put_pr(qp) << 50)
                | (put_reg(dest) << 43)
                | ((imm as u64) & 0x7ff_ffff_ffff)
        }
        Op::Cmp {
            p1,
            p2,
            rel,
            r2,
            r3,
        } => pack(
            opc::CMP,
            qp,
            put_pr(p1),
            put_pr(p2),
            put_reg(r2),
            put_reg(r3),
            rel_code(rel),
        ),
        Op::CmpI {
            p1,
            p2,
            rel,
            imm,
            r3,
        } => pack(
            opc::CMP_I,
            qp,
            put_pr(p1),
            put_pr(p2),
            put_reg(r3),
            rel_code(rel),
            put_imm22(imm as i64),
        ),
        Op::BrCond { target } => pack_branch(opc::BR_COND, qp, target),
        Op::BrCtop { target } => pack_branch(opc::BR_CTOP, qp, target),
        Op::BrCloop { target } => pack_branch(opc::BR_CLOOP, qp, target),
        Op::BrWtop { target } => pack_branch(opc::BR_WTOP, qp, target),
        Op::BrCall { target } => pack_branch(opc::BR_CALL, qp, target),
        Op::BrRet => pack_branch(opc::BR_RET, qp, 0),
        Op::MovToLc { src } => pack(opc::MOV_TO_LC, qp, put_reg(src), 0, 0, 0, 0),
        Op::MovToEc { src } => pack(opc::MOV_TO_EC, qp, put_reg(src), 0, 0, 0, 0),
        Op::MovFromLc { dest } => pack(opc::MOV_FROM_LC, qp, put_reg(dest), 0, 0, 0, 0),
        Op::MovFromEc { dest } => pack(opc::MOV_FROM_EC, qp, put_reg(dest), 0, 0, 0, 0),
        Op::MovToB0 { src } => pack(opc::MOV_TO_B0, qp, put_reg(src), 0, 0, 0, 0),
        Op::MovFromB0 { dest } => pack(opc::MOV_FROM_B0, qp, put_reg(dest), 0, 0, 0, 0),
        Op::Clrrrb => pack(opc::CLRRRB, qp, 0, 0, 0, 0, 0),
        Op::Nop { unit } => pack(opc::NOP, qp, unit_code(unit), 0, 0, 0, 0),
        Op::Hlt => pack(opc::HLT, qp, 0, 0, 0, 0, 0),
    }
}

/// Decode a 64-bit word back into an instruction.
pub fn decode(word: u64) -> Result<Insn, DecodeError> {
    let opcode = field(word, 63, 56) as u8;
    let qp = field(word, 55, 50) as u8;
    let a = field(word, 49, 43) as u8;
    let b = field(word, 42, 36) as u8;
    let c = field(word, 35, 29) as u8;
    let d = field(word, 28, 22) as u8;
    let imm = get_imm22(word);
    let target = field(word, 31, 0) as u32;

    let check_shift = |c: u8| -> Result<u8, DecodeError> {
        if c < 64 {
            Ok(c)
        } else {
            Err(DecodeError::BadSubfield("shift count", c as u64))
        }
    };
    let check_pr = |p: u8| -> Result<u8, DecodeError> {
        if p < 64 {
            Ok(p)
        } else {
            Err(DecodeError::BadPredicate(p))
        }
    };

    let op = match opcode {
        opc::LD8 => Op::Ld8 {
            dest: a,
            base: b,
            post_inc: imm,
            bias: c & 1 != 0,
        },
        opc::ST8 => Op::St8 {
            src: a,
            base: b,
            post_inc: imm,
        },
        opc::LDFD => Op::Ldfd {
            dest: a,
            base: b,
            post_inc: imm,
        },
        opc::STFD => Op::Stfd {
            src: a,
            base: b,
            post_inc: imm,
        },
        opc::LFETCH => Op::Lfetch {
            base: a,
            post_inc: imm,
            hint: hint_decode(b as u64 & 0b11),
            excl: b & 0b100 != 0,
        },
        opc::FETCHADD8 => Op::FetchAdd8 {
            dest: a,
            base: b,
            inc: imm,
        },
        opc::CMPXCHG8 => Op::Cmpxchg8 {
            dest: a,
            base: b,
            new: c,
            cmp: d,
        },
        opc::FMA_D => Op::FmaD {
            dest: a,
            f1: b,
            f2: c,
            f3: d,
        },
        opc::FMS_D => Op::FmsD {
            dest: a,
            f1: b,
            f2: c,
            f3: d,
        },
        opc::FADD_D => Op::FaddD {
            dest: a,
            f1: b,
            f2: c,
        },
        opc::FSUB_D => Op::FsubD {
            dest: a,
            f1: b,
            f2: c,
        },
        opc::FMUL_D => Op::FmulD {
            dest: a,
            f1: b,
            f2: c,
        },
        opc::FDIV_D => Op::FdivD {
            dest: a,
            f1: b,
            f2: c,
        },
        opc::FSQRT_D => Op::FsqrtD { dest: a, f1: b },
        opc::FABS_D => Op::FabsD { dest: a, f1: b },
        opc::FNEG_D => Op::FnegD { dest: a, f1: b },
        opc::FCMP_D => Op::FcmpD {
            p1: check_pr(a)?,
            p2: check_pr(b)?,
            rel: rel_decode(imm as u64 & 0x7)?,
            f1: c,
            f2: d,
        },
        opc::SETF_D => Op::SetfD { dest: a, src: b },
        opc::GETF_D => Op::GetfD { dest: a, src: b },
        opc::SETF_SIG => Op::SetfSig { dest: a, src: b },
        opc::GETF_SIG => Op::GetfSig { dest: a, src: b },
        opc::FCVT_XF => Op::FcvtXf { dest: a, src: b },
        opc::FCVT_FX_TRUNC => Op::FcvtFxTrunc { dest: a, src: b },
        opc::ADD => Op::Add {
            dest: a,
            r2: b,
            r3: c,
        },
        opc::SUB => Op::Sub {
            dest: a,
            r2: b,
            r3: c,
        },
        opc::ADD_I => Op::AddI {
            dest: a,
            src: b,
            imm,
        },
        opc::MUL => Op::Mul {
            dest: a,
            r2: b,
            r3: c,
        },
        opc::SHL_I => Op::ShlI {
            dest: a,
            src: b,
            count: check_shift(c)?,
        },
        opc::SHR_I => Op::ShrI {
            dest: a,
            src: b,
            count: check_shift(c)?,
        },
        opc::SAR_I => Op::SarI {
            dest: a,
            src: b,
            count: check_shift(c)?,
        },
        opc::AND => Op::And {
            dest: a,
            r2: b,
            r3: c,
        },
        opc::OR => Op::Or {
            dest: a,
            r2: b,
            r3: c,
        },
        opc::XOR => Op::Xor {
            dest: a,
            r2: b,
            r3: c,
        },
        opc::AND_I => Op::AndI {
            dest: a,
            src: b,
            imm,
        },
        opc::MOV_I => {
            let raw = field(word, 42, 0) as i64;
            let imm = (raw << 21) >> 21; // sign-extend from bit 42
            Op::MovI { dest: a, imm }
        }
        opc::CMP => Op::Cmp {
            p1: check_pr(a)?,
            p2: check_pr(b)?,
            rel: rel_decode(imm as u64 & 0x7)?,
            r2: c,
            r3: d,
        },
        opc::CMP_I => Op::CmpI {
            p1: check_pr(a)?,
            p2: check_pr(b)?,
            rel: rel_decode(d as u64 & 0x7)?,
            imm,
            r3: c,
        },
        opc::BR_COND => Op::BrCond { target },
        opc::BR_CTOP => Op::BrCtop { target },
        opc::BR_CLOOP => Op::BrCloop { target },
        opc::BR_WTOP => Op::BrWtop { target },
        opc::BR_CALL => Op::BrCall { target },
        opc::BR_RET => Op::BrRet,
        opc::MOV_TO_LC => Op::MovToLc { src: a },
        opc::MOV_TO_EC => Op::MovToEc { src: a },
        opc::MOV_FROM_LC => Op::MovFromLc { dest: a },
        opc::MOV_FROM_EC => Op::MovFromEc { dest: a },
        opc::MOV_TO_B0 => Op::MovToB0 { src: a },
        opc::MOV_FROM_B0 => Op::MovFromB0 { dest: a },
        opc::CLRRRB => Op::Clrrrb,
        opc::NOP => Op::Nop {
            unit: unit_decode(a as u64)?,
        },
        opc::HLT => Op::Hlt,
        other => return Err(DecodeError::BadOpcode(other)),
    };
    check_pr(qp)?;
    Ok(Insn { qp, op })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{NOP_SLOT_B, NOP_SLOT_F, NOP_SLOT_I, NOP_SLOT_M};

    fn roundtrip(insn: Insn) {
        let word = encode(&insn);
        let back = decode(word).expect("decode failed");
        assert_eq!(back, insn, "round-trip mismatch for word {word:#018x}");
    }

    #[test]
    fn roundtrip_representative_instructions() {
        let samples = vec![
            Insn::pred(
                16,
                Op::Ldfd {
                    dest: 32,
                    base: 2,
                    post_inc: 8,
                },
            ),
            Insn::pred(
                16,
                Op::Lfetch {
                    base: 43,
                    post_inc: 128,
                    hint: LfetchHint::Nt1,
                    excl: false,
                },
            ),
            Insn::new(Op::Lfetch {
                base: 43,
                post_inc: -128,
                hint: LfetchHint::Nt1,
                excl: true,
            }),
            Insn::pred(
                23,
                Op::Stfd {
                    src: 46,
                    base: 40,
                    post_inc: 8,
                },
            ),
            Insn::pred(
                21,
                Op::FmaD {
                    dest: 44,
                    f1: 6,
                    f2: 37,
                    f3: 43,
                },
            ),
            Insn::new(Op::Ld8 {
                dest: 9,
                base: 10,
                post_inc: 0,
                bias: true,
            }),
            Insn::new(Op::St8 {
                src: 9,
                base: 10,
                post_inc: -8,
            }),
            Insn::new(Op::FetchAdd8 {
                dest: 14,
                base: 15,
                inc: 1,
            }),
            Insn::new(Op::Cmpxchg8 {
                dest: 14,
                base: 15,
                new: 16,
                cmp: 17,
            }),
            Insn::new(Op::MovI {
                dest: 4,
                imm: (1 << 40) + 12345,
            }),
            Insn::new(Op::MovI {
                dest: 4,
                imm: -(1 << 40),
            }),
            Insn::new(Op::Cmp {
                p1: 6,
                p2: 7,
                rel: CmpRel::Ltu,
                r2: 3,
                r3: 4,
            }),
            Insn::new(Op::CmpI {
                p1: 6,
                p2: 0,
                rel: CmpRel::Ge,
                imm: -100,
                r3: 4,
            }),
            Insn::new(Op::FcmpD {
                p1: 8,
                p2: 9,
                rel: CmpRel::Lt,
                f1: 10,
                f2: 11,
            }),
            Insn::new(Op::BrCtop {
                target: 0xdead_beef,
            }),
            Insn::pred(7, Op::BrCond { target: 3 }),
            Insn::new(Op::BrWtop { target: 6 }),
            Insn::new(Op::BrCloop { target: 9 }),
            Insn::new(Op::BrCall { target: 300 }),
            Insn::new(Op::BrRet),
            Insn::new(Op::MovToLc { src: 5 }),
            Insn::new(Op::MovToEc { src: 5 }),
            Insn::new(Op::MovFromLc { dest: 5 }),
            Insn::new(Op::Clrrrb),
            Insn::new(Op::Hlt),
            Insn::new(Op::ShlI {
                dest: 1,
                src: 2,
                count: 63,
            }),
            Insn::new(Op::SarI {
                dest: 1,
                src: 2,
                count: 1,
            }),
            Insn::new(Op::AndI {
                dest: 1,
                src: 2,
                imm: 0xff,
            }),
            Insn::new(Op::SetfSig { dest: 33, src: 12 }),
            Insn::new(Op::FcvtXf { dest: 33, src: 33 }),
            NOP_SLOT_M,
            NOP_SLOT_I,
            NOP_SLOT_F,
            NOP_SLOT_B,
        ];
        for insn in samples {
            roundtrip(insn);
        }
    }

    #[test]
    fn branch_target_arithmetic_edge_cases_roundtrip() {
        // The target field occupies bits [31:0] of the word, below the
        // predicate at [55:50], so the full `CodeAddr` range must survive
        // encode/decode: target 0 (a backward branch to the image start),
        // a final-bundle address, a self-loop-sized small target, and the
        // extreme u32::MAX (no wrap into the qp/opcode fields).
        let targets = [0u32, 3, 0x7fff_fffd, u32::MAX - 2, u32::MAX];
        for &target in &targets {
            roundtrip(Insn::new(Op::BrCtop { target }));
            roundtrip(Insn::new(Op::BrCloop { target }));
            roundtrip(Insn::new(Op::BrWtop { target }));
            roundtrip(Insn::new(Op::BrCall { target }));
            roundtrip(Insn::pred(63, Op::BrCond { target }));
        }
        // A max-target branch must still carry its predicate intact.
        let word = encode(&Insn::pred(63, Op::BrCond { target: u32::MAX }));
        let back = decode(word).unwrap();
        assert_eq!(back.qp, 63);
        assert_eq!(back.op.branch_target(), Some(u32::MAX));
    }

    #[test]
    fn lfetch_hint_and_excl_are_separate_bits() {
        for excl in [false, true] {
            for hint in [
                LfetchHint::None,
                LfetchHint::Nt1,
                LfetchHint::Nt2,
                LfetchHint::Nta,
            ] {
                roundtrip(Insn::new(Op::Lfetch {
                    base: 100,
                    post_inc: 1200,
                    hint,
                    excl,
                }));
            }
        }
    }

    #[test]
    fn noprefetch_rewrite_is_word_level() {
        // The core rewrite of the paper: lfetch word -> nop.m word.
        let lf = Insn::pred(
            16,
            Op::Lfetch {
                base: 43,
                post_inc: 0,
                hint: LfetchHint::Nt1,
                excl: false,
            },
        );
        let word = encode(&lf);
        let nop = encode(&NOP_SLOT_M);
        assert_ne!(word, nop);
        assert_eq!(decode(nop).unwrap().op, Op::Nop { unit: Unit::M });
    }

    #[test]
    fn excl_rewrite_preserves_everything_else() {
        let lf = Insn::pred(
            16,
            Op::Lfetch {
                base: 43,
                post_inc: 256,
                hint: LfetchHint::Nt1,
                excl: false,
            },
        );
        let word = encode(&lf);
        let mut decoded = decode(word).unwrap();
        if let Op::Lfetch { ref mut excl, .. } = decoded.op {
            *excl = true;
        }
        let reworded = encode(&decoded);
        let back = decode(reworded).unwrap();
        match back.op {
            Op::Lfetch {
                base,
                post_inc,
                hint,
                excl,
            } => {
                assert_eq!(
                    (base, post_inc, hint, excl),
                    (43, 256, LfetchHint::Nt1, true)
                );
            }
            other => panic!("unexpected decode {other:?}"),
        }
        assert_eq!(back.qp, 16);
    }

    #[test]
    fn bad_opcode_rejected() {
        assert!(matches!(
            decode(0xff << 56),
            Err(DecodeError::BadOpcode(0xff))
        ));
        assert!(decode(u64::MAX).is_err());
    }

    #[test]
    fn bad_predicate_rejected() {
        // qp field = 64 is invalid... qp is a 6-bit field, so it cannot
        // exceed 63 structurally; instead check p-field validation in cmp.
        let word = pack(opc::CMP, 0, 64 & 0x7f, 0, 0, 0, 0);
        assert!(matches!(decode(word), Err(DecodeError::BadPredicate(64))));
    }

    #[test]
    #[should_panic(expected = "does not fit in 22 bits")]
    fn oversized_immediate_panics() {
        encode(&Insn::new(Op::AddI {
            dest: 1,
            src: 2,
            imm: 1 << 22,
        }));
    }

    #[test]
    #[should_panic(expected = "register number")]
    fn oversized_register_panics() {
        encode(&Insn::new(Op::Add {
            dest: 200,
            r2: 0,
            r3: 0,
        }));
    }

    #[test]
    fn movl_extremes_roundtrip() {
        roundtrip(Insn::new(Op::MovI {
            dest: 9,
            imm: MOVL_IMM_MAX,
        }));
        roundtrip(Insn::new(Op::MovI {
            dest: 9,
            imm: MOVL_IMM_MIN,
        }));
        roundtrip(Insn::new(Op::MovI { dest: 9, imm: 0 }));
        roundtrip(Insn::new(Op::MovI { dest: 9, imm: -1 }));
    }

    #[test]
    fn negative_postinc_roundtrip() {
        roundtrip(Insn::new(Op::Ldfd {
            dest: 40,
            base: 41,
            post_inc: -(1 << 21),
        }));
        roundtrip(Insn::new(Op::Ldfd {
            dest: 40,
            base: 41,
            post_inc: (1 << 21) - 1,
        }));
    }
}
