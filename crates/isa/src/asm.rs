//! A small assembler: labels, forward references, bundle alignment.
//!
//! The `minicc` code generator in `cobra-kernels` drives this API to emit the
//! icc-shaped binaries (software-pipelined loops with aggressive prefetch)
//! that COBRA later optimizes. The assembler resolves labels at `finish()`
//! time and produces a [`CodeImage`].

use std::collections::BTreeMap;

use crate::encode::encode;
use crate::image::CodeImage;
use crate::insn::{CmpRel, Insn, LfetchHint, Op, Unit};
use crate::{CodeAddr, SLOTS_PER_BUNDLE};

/// An assembler label. Create with [`Assembler::new_label`], place with
/// [`Assembler::bind`], reference from branch-emitting helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

#[derive(Debug)]
struct Fixup {
    insn_index: usize,
    label: Label,
}

/// Incremental instruction emitter with label fixups.
#[derive(Debug, Default)]
pub struct Assembler {
    insns: Vec<Insn>,
    labels: Vec<Option<CodeAddr>>,
    fixups: Vec<Fixup>,
    symbols: BTreeMap<String, CodeAddr>,
    comments: Vec<(CodeAddr, String)>,
}

impl Assembler {
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Current emission address (index of the next instruction).
    #[inline]
    pub fn here(&self) -> CodeAddr {
        self.insns.len() as CodeAddr
    }

    /// Allocate an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` at the current (bundle-aligned) address. Padding `nop.i`
    /// slots are inserted as needed so every branch target starts a bundle,
    /// matching the alignment discipline of real IA-64 code.
    pub fn bind(&mut self, label: Label) {
        self.align();
        let addr = self.here();
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(addr);
    }

    /// Bind `label` and also record it as a named symbol in the image.
    pub fn bind_named(&mut self, label: Label, name: impl Into<String>) {
        self.bind(label);
        let addr = self.here();
        self.symbols.insert(name.into(), addr);
    }

    /// Record a named symbol at the current (bundle-aligned) address.
    pub fn symbol(&mut self, name: impl Into<String>) -> CodeAddr {
        self.align();
        let addr = self.here();
        self.symbols.insert(name.into(), addr);
        addr
    }

    /// Pad with `nop.i` to the next bundle boundary.
    pub fn align(&mut self) {
        while !self.here().is_multiple_of(SLOTS_PER_BUNDLE) {
            self.emit(Insn::new(Op::Nop { unit: Unit::I }));
        }
    }

    /// Emit one instruction; returns its address.
    pub fn emit(&mut self, insn: Insn) -> CodeAddr {
        let addr = self.here();
        self.insns.push(insn);
        addr
    }

    /// Attach a disassembly comment to the *next* emitted instruction's
    /// address (call just before emitting).
    pub fn comment(&mut self, text: impl Into<String>) {
        self.comments.push((self.here(), text.into()));
    }

    /// Emit a branch to a label; the target is fixed up at `finish()`.
    pub fn emit_branch(&mut self, insn: Insn, label: Label) -> CodeAddr {
        assert!(
            insn.op.branch_target().is_some(),
            "emit_branch needs a targeted branch"
        );
        let addr = self.emit(insn);
        self.fixups.push(Fixup {
            insn_index: addr as usize,
            label,
        });
        addr
    }

    // ---- convenience emitters used heavily by minicc ----

    /// `movl rD=imm`.
    pub fn movi(&mut self, dest: u8, imm: i64) -> CodeAddr {
        self.emit(Insn::new(Op::MovI { dest, imm }))
    }

    /// `mov rD=rS` (assembles as `add rD=rS,r0`).
    pub fn mov(&mut self, dest: u8, src: u8) -> CodeAddr {
        self.emit(Insn::new(Op::Add {
            dest,
            r2: src,
            r3: 0,
        }))
    }

    /// `adds rD=imm,rS`.
    pub fn addi(&mut self, dest: u8, src: u8, imm: i32) -> CodeAddr {
        self.emit(Insn::new(Op::AddI { dest, src, imm }))
    }

    /// `ldfd fD=[rB],inc`.
    pub fn ldfd(&mut self, qp: u8, dest: u8, base: u8, post_inc: i32) -> CodeAddr {
        self.emit(Insn::pred(
            qp,
            Op::Ldfd {
                dest,
                base,
                post_inc,
            },
        ))
    }

    /// `stfd [rB]=fS,inc`.
    pub fn stfd(&mut self, qp: u8, src: u8, base: u8, post_inc: i32) -> CodeAddr {
        self.emit(Insn::pred(
            qp,
            Op::Stfd {
                src,
                base,
                post_inc,
            },
        ))
    }

    /// `ld8 rD=[rB],inc`.
    pub fn ld8(&mut self, qp: u8, dest: u8, base: u8, post_inc: i32) -> CodeAddr {
        self.emit(Insn::pred(
            qp,
            Op::Ld8 {
                dest,
                base,
                post_inc,
                bias: false,
            },
        ))
    }

    /// `st8 [rB]=rS,inc`.
    pub fn st8(&mut self, qp: u8, src: u8, base: u8, post_inc: i32) -> CodeAddr {
        self.emit(Insn::pred(
            qp,
            Op::St8 {
                src,
                base,
                post_inc,
            },
        ))
    }

    /// `lfetch.nt1 [rB],inc` — the aggressive-prefetch workhorse of Figure 2.
    pub fn lfetch_nt1(&mut self, qp: u8, base: u8, post_inc: i32) -> CodeAddr {
        self.emit(Insn::pred(
            qp,
            Op::Lfetch {
                base,
                post_inc,
                hint: LfetchHint::Nt1,
                excl: false,
            },
        ))
    }

    /// `fma.d fD=f1,f2,f3`.
    pub fn fma_d(&mut self, qp: u8, dest: u8, f1: u8, f2: u8, f3: u8) -> CodeAddr {
        self.emit(Insn::pred(qp, Op::FmaD { dest, f1, f2, f3 }))
    }

    /// `cmp.rel pA,pB=r2,r3`.
    pub fn cmp(&mut self, p1: u8, p2: u8, rel: CmpRel, r2: u8, r3: u8) -> CodeAddr {
        self.emit(Insn::new(Op::Cmp {
            p1,
            p2,
            rel,
            r2,
            r3,
        }))
    }

    /// `nop.unit`.
    pub fn nop(&mut self, unit: Unit) -> CodeAddr {
        self.emit(Insn::new(Op::Nop { unit }))
    }

    /// `mov ar.lc=rS`.
    pub fn mov_to_lc(&mut self, src: u8) -> CodeAddr {
        self.emit(Insn::new(Op::MovToLc { src }))
    }

    /// `mov ar.ec=rS`.
    pub fn mov_to_ec(&mut self, src: u8) -> CodeAddr {
        self.emit(Insn::new(Op::MovToEc { src }))
    }

    /// `br.ctop label`.
    pub fn br_ctop(&mut self, label: Label) -> CodeAddr {
        self.emit_branch(Insn::new(Op::BrCtop { target: 0 }), label)
    }

    /// `br.cloop label`.
    pub fn br_cloop(&mut self, label: Label) -> CodeAddr {
        self.emit_branch(Insn::new(Op::BrCloop { target: 0 }), label)
    }

    /// `br.wtop label`.
    pub fn br_wtop(&mut self, qp: u8, label: Label) -> CodeAddr {
        self.emit_branch(Insn::pred(qp, Op::BrWtop { target: 0 }), label)
    }

    /// `(qp) br.cond label`.
    pub fn br_cond(&mut self, qp: u8, label: Label) -> CodeAddr {
        self.emit_branch(Insn::pred(qp, Op::BrCond { target: 0 }), label)
    }

    /// `hlt`.
    pub fn hlt(&mut self) -> CodeAddr {
        self.emit(Insn::new(Op::Hlt))
    }

    /// Resolve all fixups and produce the final [`CodeImage`].
    ///
    /// # Panics
    /// Panics on unbound labels — an unresolved forward reference is a
    /// code-generator bug.
    pub fn finish(mut self) -> CodeImage {
        self.align();
        for fixup in &self.fixups {
            let target = self.labels[fixup.label.0]
                .unwrap_or_else(|| panic!("unbound label {:?}", fixup.label));
            let insn = &mut self.insns[fixup.insn_index];
            insn.op = insn
                .op
                .with_branch_target(target)
                .expect("fixup on a non-branch instruction");
        }
        let words: Vec<u64> = self.insns.iter().map(encode).collect();
        let mut image = CodeImage::from_words(words, self.symbols);
        for (addr, text) in self.comments {
            image.add_comment(addr, text);
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::Op;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        let top = a.new_label();
        let out = a.new_label();
        a.movi(4, 10);
        a.mov_to_lc(4);
        a.bind(top);
        let top_addr = a.here();
        a.addi(5, 5, 1);
        a.br_cond(6, out); // forward reference
        a.br_cloop(top); // backward reference
        a.bind(out);
        let img = a.finish();

        let insns = img.decode_all().unwrap();
        let cloop = insns
            .iter()
            .find(|i| matches!(i.op, Op::BrCloop { .. }))
            .unwrap();
        assert_eq!(cloop.op.branch_target(), Some(top_addr));
        let cond = insns
            .iter()
            .find(|i| matches!(i.op, Op::BrCond { .. }))
            .unwrap();
        let out_addr = cond.op.branch_target().unwrap();
        assert!(out_addr > top_addr);
        assert_eq!(out_addr % SLOTS_PER_BUNDLE, 0);
    }

    #[test]
    fn labels_are_bundle_aligned() {
        let mut a = Assembler::new();
        a.nop(Unit::I); // misalign
        let l = a.new_label();
        a.bind(l);
        assert_eq!(a.here() % SLOTS_PER_BUNDLE, 0);
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics_at_finish() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.br_cond(0, l);
        let _ = a.finish();
    }

    #[test]
    fn symbols_and_comments_flow_into_image() {
        let mut a = Assembler::new();
        let entry = a.symbol("entry");
        a.comment("prefetch y[0]+8");
        a.lfetch_nt1(0, 10, 0);
        a.hlt();
        let img = a.finish();
        assert_eq!(img.symbol("entry"), Some(entry));
        assert_eq!(img.comment(entry), Some("prefetch y[0]+8"));
    }

    #[test]
    fn backward_branch_at_image_start_resolves_to_slot_zero() {
        // Loop head at the very first slot: the back edge must resolve to
        // target 0, not underflow or land past the end.
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        assert_eq!(a.here(), 0);
        a.addi(5, 5, 1);
        a.br_ctop(top);
        let img = a.finish();
        let back = img
            .decode_all()
            .unwrap()
            .into_iter()
            .find(|i| matches!(i.op, Op::BrCtop { .. }))
            .unwrap();
        assert_eq!(back.op.branch_target(), Some(0));
        assert!(img.insn(0).is_ok());
    }

    #[test]
    fn self_loop_branch_targets_its_own_address() {
        // A branch that is the first slot of its own bundle and targets the
        // label bound at that bundle is a one-slot self-loop.
        let mut a = Assembler::new();
        a.nop(Unit::I); // push the loop off slot 0
        let l = a.new_label();
        a.bind(l);
        let branch_addr = a.here();
        a.br_cloop(l);
        let img = a.finish();
        let insn = img.insn(branch_addr).unwrap();
        assert_eq!(insn.op.branch_target(), Some(branch_addr));
        assert_eq!(branch_addr % SLOTS_PER_BUNDLE, 0);
    }

    #[test]
    fn forward_branch_to_final_bundle_stays_in_bounds() {
        // A forward branch whose target is the last bundle of the image:
        // the resolved target must be a valid in-bounds slot address.
        let mut a = Assembler::new();
        let end = a.new_label();
        a.addi(5, 5, 1);
        a.br_cond(0, end);
        a.addi(6, 6, 1); // skipped
        a.bind(end);
        a.nop(Unit::M);
        a.hlt();
        let img = a.finish();
        let cond = img
            .decode_all()
            .unwrap()
            .into_iter()
            .find(|i| matches!(i.op, Op::BrCond { .. }))
            .unwrap();
        let target = cond.op.branch_target().unwrap();
        assert_eq!(target, img.len() - SLOTS_PER_BUNDLE);
        assert!(target < img.len());
        assert!(img.insn(target).is_ok());
    }

    #[test]
    fn image_ends_bundle_aligned() {
        let mut a = Assembler::new();
        a.nop(Unit::I);
        a.nop(Unit::I);
        a.nop(Unit::I);
        a.nop(Unit::I);
        let img = a.finish();
        assert_eq!(img.len() % SLOTS_PER_BUNDLE, 0);
    }
}
