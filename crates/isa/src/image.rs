//! The program binary as seen (and mutated) by a runtime optimizer.
//!
//! A [`CodeImage`] holds the text segment of a simulated program: a vector of
//! 64-bit instruction words plus symbols and (optional) source comments. Two
//! things make it COBRA-shaped rather than a plain `Vec<u64>`:
//!
//! * **Validated in-place patching** with an undo log — the `noprefetch` and
//!   `.excl` optimizations overwrite single words in the live image, and the
//!   framework may revert a deployment that regressed performance.
//! * **A growable trace-cache region** appended after the original text —
//!   optimized traces are "stored in a trace cache in the same address space
//!   as the binary program being optimized" (paper §1), and the original code
//!   is patched with a branch redirecting into it.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::encode::{decode, encode, DecodeError};
use crate::insn::Insn;
use crate::{bundle_align, CodeAddr, SLOTS_PER_BUNDLE};

/// Why a patch request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// Address beyond the end of the image.
    OutOfRange(CodeAddr),
    /// Raw word does not decode to a valid instruction.
    InvalidWord(DecodeError),
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::OutOfRange(addr) => write!(f, "patch address {addr} out of range"),
            PatchError::InvalidWord(e) => write!(f, "patch word invalid: {e}"),
        }
    }
}

impl std::error::Error for PatchError {}

/// One applied patch, kept so deployments can be reverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchRecord {
    pub addr: CodeAddr,
    pub old_word: u64,
    pub new_word: u64,
}

/// A patchable program text segment with a trace-cache region.
#[derive(Debug, Clone, Default)]
pub struct CodeImage {
    words: Vec<u64>,
    /// Decoded shadow of `words`, kept coherent by every mutation so
    /// [`Self::insn`] is a slot read instead of a per-call decode
    /// (`None` marks a word that does not decode).
    decoded: Vec<Option<Insn>>,
    /// Length of the original (pre-trace-cache) text, in words.
    main_len: u32,
    symbols: BTreeMap<String, CodeAddr>,
    comments: BTreeMap<CodeAddr, String>,
    patch_log: Vec<PatchRecord>,
}

impl CodeImage {
    /// Build an image from already-encoded words (the assembler's output).
    pub fn from_words(words: Vec<u64>, symbols: BTreeMap<String, CodeAddr>) -> Self {
        let main_len = words.len() as u32;
        let decoded = words.iter().map(|&w| decode(w).ok()).collect();
        CodeImage {
            words,
            decoded,
            main_len,
            symbols,
            comments: BTreeMap::new(),
            patch_log: Vec::new(),
        }
    }

    /// Total image length in words (original text + trace cache).
    #[inline]
    pub fn len(&self) -> u32 {
        self.words.len() as u32
    }

    /// True when the image contains no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Length of the original program text in words.
    #[inline]
    pub fn main_len(&self) -> u32 {
        self.main_len
    }

    /// Does `addr` point into the trace-cache region?
    #[inline]
    pub fn is_trace_addr(&self, addr: CodeAddr) -> bool {
        addr >= self.main_len && addr < self.len()
    }

    /// Raw instruction word at `addr`.
    ///
    /// # Panics
    /// Panics when `addr` is out of range (a fetch outside the text segment
    /// would be a simulator bug, the moral equivalent of SIGSEGV on fetch).
    #[inline]
    pub fn word(&self, addr: CodeAddr) -> u64 {
        self.words[addr as usize]
    }

    /// All words, e.g. for building a decoded shadow copy (an i-cache).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Instruction at `addr`, served from the decoded shadow (the raw word
    /// is only re-decoded to reproduce the error when it is invalid).
    #[inline]
    pub fn insn(&self, addr: CodeAddr) -> Result<Insn, DecodeError> {
        match self.decoded[addr as usize] {
            Some(insn) => Ok(insn),
            None => decode(self.word(addr)),
        }
    }

    /// Decode every instruction in the image (fails on the first bad word).
    pub fn decode_all(&self) -> Result<Vec<Insn>, DecodeError> {
        self.words
            .iter()
            .zip(&self.decoded)
            .map(|(&w, d)| match d {
                Some(insn) => Ok(*insn),
                None => decode(w),
            })
            .collect()
    }

    /// Count instructions in the *original text* matching a predicate.
    /// Table 1 of the paper is produced by counting `lfetch`/`br.ctop`/
    /// `br.cloop`/`br.wtop` words this way — from the binary, not from
    /// code-generator metadata.
    pub fn count_matching(&self, mut pred: impl FnMut(&Insn) -> bool) -> usize {
        self.decoded[..self.main_len as usize]
            .iter()
            .filter_map(|d| d.as_ref())
            .filter(|i| pred(i))
            .count()
    }

    /// Overwrite the instruction at `addr`, recording the patch for undo.
    /// Returns the previous word.
    pub fn patch(&mut self, addr: CodeAddr, insn: &Insn) -> Result<u64, PatchError> {
        let new_word = encode(insn);
        self.patch_word(addr, new_word)
    }

    /// Overwrite a raw word at `addr` after validating that it decodes.
    pub fn patch_word(&mut self, addr: CodeAddr, new_word: u64) -> Result<u64, PatchError> {
        if addr >= self.len() {
            return Err(PatchError::OutOfRange(addr));
        }
        let decoded = decode(new_word).map_err(PatchError::InvalidWord)?;
        let old_word = self.words[addr as usize];
        self.words[addr as usize] = new_word;
        self.decoded[addr as usize] = Some(decoded);
        self.patch_log.push(PatchRecord {
            addr,
            old_word,
            new_word,
        });
        Ok(old_word)
    }

    /// Undo the most recent patch. Returns the undone record.
    pub fn revert_last_patch(&mut self) -> Option<PatchRecord> {
        let rec = self.patch_log.pop()?;
        self.words[rec.addr as usize] = rec.old_word;
        self.decoded[rec.addr as usize] = decode(rec.old_word).ok();
        Some(rec)
    }

    /// Undo all patches applied at or after `mark` (see [`Self::patch_mark`]),
    /// newest first. Returns the undone records so callers that maintain a
    /// decoded shadow copy can refresh exactly the touched slots instead of
    /// re-decoding the whole image.
    pub fn revert_to_mark(&mut self, mark: usize) -> Vec<PatchRecord> {
        let mut undone = Vec::with_capacity(self.patch_log.len().saturating_sub(mark));
        while self.patch_log.len() > mark {
            undone.push(self.revert_last_patch().expect("log length checked"));
        }
        undone
    }

    /// Current position in the patch log, for later [`Self::revert_to_mark`].
    #[inline]
    pub fn patch_mark(&self) -> usize {
        self.patch_log.len()
    }

    /// All patches applied so far, oldest first.
    #[inline]
    pub fn patch_log(&self) -> &[PatchRecord] {
        &self.patch_log
    }

    /// Append an optimized trace to the trace-cache region. The trace is
    /// placed at the next bundle boundary (padded with `nop.i`); returns its
    /// start address.
    pub fn append_trace(&mut self, insns: &[Insn]) -> CodeAddr {
        use crate::insn::NOP_SLOT_I;
        let start = bundle_align(self.len());
        let push = |img: &mut Self, insn: &Insn| {
            let word = encode(insn);
            img.words.push(word);
            img.decoded.push(decode(word).ok());
        };
        while self.len() < start {
            push(self, &NOP_SLOT_I);
        }
        for insn in insns {
            push(self, insn);
        }
        // Pad the tail so the image always ends on a bundle boundary.
        while !self.len().is_multiple_of(SLOTS_PER_BUNDLE) {
            push(self, &NOP_SLOT_I);
        }
        start
    }

    /// Look up a symbol (label bound by the assembler).
    pub fn symbol(&self, name: &str) -> Option<CodeAddr> {
        self.symbols.get(name).copied()
    }

    /// All symbols, sorted by name.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, CodeAddr)> {
        self.symbols.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Register a symbol (used for trace-cache entry points).
    pub fn add_symbol(&mut self, name: impl Into<String>, addr: CodeAddr) {
        self.symbols.insert(name.into(), addr);
    }

    /// Attach a human-readable comment to an address (shown by the
    /// disassembler, used to reproduce the annotations of Figure 2).
    pub fn add_comment(&mut self, addr: CodeAddr, text: impl Into<String>) {
        self.comments.insert(addr, text.into());
    }

    /// Comment attached to `addr`, if any.
    pub fn comment(&self, addr: CodeAddr) -> Option<&str> {
        self.comments.get(&addr).map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{LfetchHint, Op, NOP_SLOT_M};

    fn tiny_image() -> CodeImage {
        let insns = [
            Insn::new(Op::Lfetch {
                base: 10,
                post_inc: 128,
                hint: LfetchHint::Nt1,
                excl: false,
            }),
            Insn::new(Op::AddI {
                dest: 1,
                src: 1,
                imm: 8,
            }),
            Insn::new(Op::BrCloop { target: 0 }),
        ];
        let words = insns.iter().map(encode).collect();
        CodeImage::from_words(words, BTreeMap::new())
    }

    #[test]
    fn patch_and_revert() {
        let mut img = tiny_image();
        let orig = img.word(0);
        let mark = img.patch_mark();
        let old = img.patch(0, &NOP_SLOT_M).unwrap();
        assert_eq!(old, orig);
        assert_ne!(img.word(0), orig);
        assert_eq!(img.patch_log().len(), 1);
        img.revert_to_mark(mark);
        assert_eq!(img.word(0), orig);
        assert!(img.patch_log().is_empty());
    }

    #[test]
    fn patch_out_of_range_rejected() {
        let mut img = tiny_image();
        assert_eq!(img.patch(99, &NOP_SLOT_M), Err(PatchError::OutOfRange(99)));
    }

    #[test]
    fn patch_invalid_word_rejected() {
        let mut img = tiny_image();
        assert!(matches!(
            img.patch_word(0, u64::MAX),
            Err(PatchError::InvalidWord(_))
        ));
        // Image unchanged after the failed patch.
        assert!(img.patch_log().is_empty());
    }

    #[test]
    fn trace_region_is_bundle_aligned_and_flagged() {
        let mut img = tiny_image();
        assert_eq!(img.main_len(), 3);
        let trace = [NOP_SLOT_M, NOP_SLOT_M, NOP_SLOT_M, NOP_SLOT_M];
        let start = img.append_trace(&trace);
        assert_eq!(start, 3);
        assert_eq!(start % SLOTS_PER_BUNDLE, 0);
        assert!(img.is_trace_addr(start));
        assert!(!img.is_trace_addr(0));
        assert_eq!(img.len() % SLOTS_PER_BUNDLE, 0, "image ends bundle-aligned");

        let second = img.append_trace(&trace[..1]);
        assert!(second > start);
        assert_eq!(second % SLOTS_PER_BUNDLE, 0);
    }

    #[test]
    fn count_matching_only_scans_original_text() {
        let mut img = tiny_image();
        let lf = Insn::new(Op::Lfetch {
            base: 9,
            post_inc: 0,
            hint: LfetchHint::Nt1,
            excl: true,
        });
        img.append_trace(&[lf]);
        let n = img.count_matching(|i| i.is_lfetch());
        assert_eq!(n, 1, "trace-cache lfetch must not be counted");
    }

    #[test]
    fn symbols_and_comments() {
        let mut img = tiny_image();
        img.add_symbol("loop", 0);
        img.add_comment(0, "prefetch y[0]+648");
        assert_eq!(img.symbol("loop"), Some(0));
        assert_eq!(img.comment(0), Some("prefetch y[0]+648"));
        assert_eq!(img.symbol("missing"), None);
        assert_eq!(img.symbols().count(), 1);
    }

    #[test]
    fn decoded_shadow_tracks_every_mutation() {
        let shadow_coherent = |img: &CodeImage| {
            for a in 0..img.len() {
                assert_eq!(
                    img.insn(a).ok(),
                    decode(img.word(a)).ok(),
                    "shadow diverged at {a}"
                );
            }
        };
        let mut img = tiny_image();
        shadow_coherent(&img);
        let mark = img.patch_mark();
        img.patch(1, &NOP_SLOT_M).unwrap();
        shadow_coherent(&img);
        img.append_trace(&[NOP_SLOT_M, NOP_SLOT_M]);
        shadow_coherent(&img);
        img.revert_to_mark(mark);
        shadow_coherent(&img);
        assert_eq!(img.insn(1).unwrap(), tiny_image().insn(1).unwrap());
    }

    #[test]
    fn decode_all_roundtrips() {
        let img = tiny_image();
        let insns = img.decode_all().unwrap();
        assert_eq!(insns.len(), 3);
        assert!(insns[0].is_lfetch());
    }
}
