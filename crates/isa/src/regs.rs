//! Register-file layout and rotation semantics.
//!
//! Itanium 2 has 128 general registers (`r0`–`r127`), 128 floating-point
//! registers (`f0`–`f127`) and 64 one-bit predicate registers (`p0`–`p63`).
//! Registers `r32`+, `f32`+ and `p16`+ form *rotating* regions used by
//! software-pipelined (modulo-scheduled) loops: every taken `br.ctop`/`br.wtop`
//! decrements the rotating register bases, so the value written to `f32` in one
//! iteration is read as `f33` in the next. The icc-generated DAXPY loop in the
//! paper's Figure 2 depends on exactly this mechanism to rotate prefetch target
//! addresses through `r43`, so the simulator implements it faithfully.
//!
//! Architectural constants: `r0` reads as zero and is read-only; `f0` reads as
//! `+0.0` and `f1` as `+1.0`, both read-only; `p0` reads as `true` and is
//! read-only (it is the default qualifying predicate).

/// Number of general registers.
pub const NUM_GR: usize = 128;
/// Number of floating-point registers.
pub const NUM_FR: usize = 128;
/// Number of predicate registers.
pub const NUM_PR: usize = 64;

/// First rotating general register.
pub const ROT_GR_BASE: u8 = 32;
/// Size of the rotating general-register region (`r32`–`r127`).
pub const ROT_GR_SIZE: u8 = 96;
/// First rotating floating-point register.
pub const ROT_FR_BASE: u8 = 32;
/// Size of the rotating floating-point region (`f32`–`f127`).
pub const ROT_FR_SIZE: u8 = 96;
/// First rotating predicate register.
pub const ROT_PR_BASE: u8 = 16;
/// Size of the rotating predicate region (`p16`–`p63`).
pub const ROT_PR_SIZE: u8 = 48;

/// Rotating-register-base state (the `rrb.gr`/`rrb.fr`/`rrb.pr` fields of the
/// Itanium `CFM`). Bases are stored as non-negative offsets; a rotation step
/// *decrements* each base modulo its region size, which renames `rN` to `rN+1`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Rrb {
    pub gr: u8,
    pub fr: u8,
    pub pr: u8,
}

impl Rrb {
    /// Reset all rotating bases to zero (the `clrrrb` instruction).
    pub fn clear(&mut self) {
        *self = Rrb::default();
    }

    /// Perform one rotation step (executed by taken `br.ctop`/`br.wtop`).
    pub fn rotate(&mut self) {
        self.gr = (self.gr + ROT_GR_SIZE - 1) % ROT_GR_SIZE;
        self.fr = (self.fr + ROT_FR_SIZE - 1) % ROT_FR_SIZE;
        self.pr = (self.pr + ROT_PR_SIZE - 1) % ROT_PR_SIZE;
    }

    /// Map a virtual general-register number to its physical slot.
    #[inline]
    pub fn map_gr(&self, vreg: u8) -> u8 {
        map_rotating(vreg, ROT_GR_BASE, ROT_GR_SIZE, self.gr)
    }

    /// Map a virtual floating-point-register number to its physical slot.
    #[inline]
    pub fn map_fr(&self, vreg: u8) -> u8 {
        map_rotating(vreg, ROT_FR_BASE, ROT_FR_SIZE, self.fr)
    }

    /// Map a virtual predicate-register number to its physical slot.
    #[inline]
    pub fn map_pr(&self, vreg: u8) -> u8 {
        map_rotating(vreg, ROT_PR_BASE, ROT_PR_SIZE, self.pr)
    }
}

#[inline]
fn map_rotating(vreg: u8, base: u8, size: u8, rrb: u8) -> u8 {
    // With no rotation in flight the rotating region maps to itself
    // (`v - base < size` for every architectural register number), so the
    // whole map is the identity — one predictable compare on the hot path
    // of every register access instead of a modulo.
    if rrb == 0 || vreg < base {
        vreg
    } else {
        base + (vreg - base + rrb) % size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_registers_never_rotate() {
        let mut rrb = Rrb::default();
        rrb.rotate();
        rrb.rotate();
        assert_eq!(rrb.map_gr(0), 0);
        assert_eq!(rrb.map_gr(31), 31);
        assert_eq!(rrb.map_fr(6), 6);
        assert_eq!(rrb.map_pr(15), 15);
    }

    #[test]
    fn rotation_renames_upward() {
        // After one rotation, a value previously written through virtual f32
        // must be visible through virtual f33: map(f33, after) == map(f32, before).
        let before = Rrb::default();
        let mut after = before;
        after.rotate();
        for v in ROT_FR_BASE..(ROT_FR_BASE + 10) {
            assert_eq!(after.map_fr(v + 1), before.map_fr(v));
        }
        for v in ROT_GR_BASE..(ROT_GR_BASE + 10) {
            assert_eq!(after.map_gr(v + 1), before.map_gr(v));
        }
        for v in ROT_PR_BASE..(ROT_PR_BASE + 10) {
            assert_eq!(after.map_pr(v + 1), before.map_pr(v));
        }
    }

    #[test]
    fn rotation_wraps_modulo_region() {
        let mut rrb = Rrb::default();
        for _ in 0..ROT_GR_SIZE {
            rrb.rotate();
        }
        // GR region size (96) rotations bring gr base back to zero; the PR
        // region (48) divides 96 so it is also back at zero.
        assert_eq!(rrb.gr, 0);
        assert_eq!(rrb.fr, 0);
        assert_eq!(rrb.pr, 0);
    }

    #[test]
    fn clear_resets_bases() {
        let mut rrb = Rrb::default();
        rrb.rotate();
        assert_ne!(rrb, Rrb::default());
        rrb.clear();
        assert_eq!(rrb, Rrb::default());
    }

    #[test]
    fn mapping_stays_in_region() {
        let mut rrb = Rrb::default();
        for step in 0..200 {
            rrb.rotate();
            for v in 0..=127u8 {
                let g = rrb.map_gr(v);
                let f = rrb.map_fr(v);
                if v >= ROT_GR_BASE {
                    assert!(g >= ROT_GR_BASE, "step {step} vreg {v} mapped to {g}");
                } else {
                    assert_eq!(g, v);
                }
                assert!(f < NUM_FR as u8);
            }
            for v in 0..64u8 {
                let p = rrb.map_pr(v);
                assert!(p < NUM_PR as u8);
                if v >= ROT_PR_BASE {
                    assert!(p >= ROT_PR_BASE);
                }
            }
        }
    }
}
