//! Property tests: every well-formed instruction round-trips through the
//! binary encoding, and arbitrary 64-bit words never panic the decoder.

use cobra_isa::insn::Op;
use cobra_isa::{decode, encode, CmpRel, Insn, LfetchHint, Unit};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = u8> {
    0u8..128
}

fn arb_pr() -> impl Strategy<Value = u8> {
    0u8..64
}

fn arb_imm22() -> impl Strategy<Value = i32> {
    -(1i32 << 21)..(1i32 << 21)
}

fn arb_rel() -> impl Strategy<Value = CmpRel> {
    prop_oneof![
        Just(CmpRel::Eq),
        Just(CmpRel::Ne),
        Just(CmpRel::Lt),
        Just(CmpRel::Le),
        Just(CmpRel::Gt),
        Just(CmpRel::Ge),
        Just(CmpRel::Ltu),
        Just(CmpRel::Geu),
    ]
}

fn arb_hint() -> impl Strategy<Value = LfetchHint> {
    prop_oneof![
        Just(LfetchHint::None),
        Just(LfetchHint::Nt1),
        Just(LfetchHint::Nt2),
        Just(LfetchHint::Nta),
    ]
}

fn arb_unit() -> impl Strategy<Value = Unit> {
    prop_oneof![Just(Unit::M), Just(Unit::I), Just(Unit::F), Just(Unit::B)]
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (arb_reg(), arb_reg(), arb_imm22(), any::<bool>()).prop_map(
            |(dest, base, post_inc, bias)| Op::Ld8 {
                dest,
                base,
                post_inc,
                bias
            }
        ),
        (arb_reg(), arb_reg(), arb_imm22()).prop_map(|(src, base, post_inc)| Op::St8 {
            src,
            base,
            post_inc
        }),
        (arb_reg(), arb_reg(), arb_imm22()).prop_map(|(dest, base, post_inc)| Op::Ldfd {
            dest,
            base,
            post_inc
        }),
        (arb_reg(), arb_reg(), arb_imm22()).prop_map(|(src, base, post_inc)| Op::Stfd {
            src,
            base,
            post_inc
        }),
        (arb_reg(), arb_imm22(), arb_hint(), any::<bool>()).prop_map(
            |(base, post_inc, hint, excl)| Op::Lfetch {
                base,
                post_inc,
                hint,
                excl
            }
        ),
        (arb_reg(), arb_reg(), arb_imm22()).prop_map(|(dest, base, inc)| Op::FetchAdd8 {
            dest,
            base,
            inc
        }),
        (arb_reg(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(dest, base, new, cmp)| {
            Op::Cmpxchg8 {
                dest,
                base,
                new,
                cmp,
            }
        }),
        (arb_reg(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(dest, f1, f2, f3)| Op::FmaD {
            dest,
            f1,
            f2,
            f3
        }),
        (arb_reg(), arb_reg(), arb_reg(), arb_reg()).prop_map(|(dest, f1, f2, f3)| Op::FmsD {
            dest,
            f1,
            f2,
            f3
        }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(dest, f1, f2)| Op::FaddD { dest, f1, f2 }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(dest, f1, f2)| Op::FdivD { dest, f1, f2 }),
        (arb_pr(), arb_pr(), arb_rel(), arb_reg(), arb_reg()).prop_map(|(p1, p2, rel, f1, f2)| {
            Op::FcmpD {
                p1,
                p2,
                rel,
                f1,
                f2,
            }
        }),
        (arb_reg(), arb_reg(), arb_reg()).prop_map(|(dest, r2, r3)| Op::Add { dest, r2, r3 }),
        (arb_reg(), arb_reg(), arb_imm22()).prop_map(|(dest, src, imm)| Op::AddI {
            dest,
            src,
            imm
        }),
        (arb_reg(), arb_reg(), 0u8..64).prop_map(|(dest, src, count)| Op::ShlI {
            dest,
            src,
            count
        }),
        (arb_reg(), -(1i64 << 42)..(1i64 << 42)).prop_map(|(dest, imm)| Op::MovI { dest, imm }),
        (arb_pr(), arb_pr(), arb_rel(), arb_reg(), arb_reg()).prop_map(|(p1, p2, rel, r2, r3)| {
            Op::Cmp {
                p1,
                p2,
                rel,
                r2,
                r3,
            }
        }),
        (arb_pr(), arb_pr(), arb_rel(), arb_imm22(), arb_reg()).prop_map(
            |(p1, p2, rel, imm, r3)| Op::CmpI {
                p1,
                p2,
                rel,
                imm,
                r3
            }
        ),
        any::<u32>().prop_map(|target| Op::BrCond { target }),
        any::<u32>().prop_map(|target| Op::BrCtop { target }),
        any::<u32>().prop_map(|target| Op::BrCloop { target }),
        any::<u32>().prop_map(|target| Op::BrWtop { target }),
        any::<u32>().prop_map(|target| Op::BrCall { target }),
        Just(Op::BrRet),
        arb_reg().prop_map(|src| Op::MovToLc { src }),
        arb_reg().prop_map(|src| Op::MovToEc { src }),
        arb_reg().prop_map(|dest| Op::MovFromLc { dest }),
        arb_reg().prop_map(|dest| Op::MovFromEc { dest }),
        Just(Op::Clrrrb),
        arb_unit().prop_map(|unit| Op::Nop { unit }),
        Just(Op::Hlt),
        (arb_reg(), arb_reg()).prop_map(|(dest, src)| Op::SetfD { dest, src }),
        (arb_reg(), arb_reg()).prop_map(|(dest, src)| Op::GetfSig { dest, src }),
        (arb_reg(), arb_reg()).prop_map(|(dest, src)| Op::FcvtXf { dest, src }),
    ]
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    (arb_pr(), arb_op()).prop_map(|(qp, op)| Insn { qp, op })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let word = encode(&insn);
        let back = decode(word).expect("well-formed instruction must decode");
        prop_assert_eq!(back, insn);
    }

    #[test]
    fn decode_is_total_and_never_panics(word in any::<u64>()) {
        // Either decodes or returns an error; re-encoding a successful decode
        // must reproduce a word that decodes to the same instruction.
        if let Ok(insn) = decode(word) {
            let reworded = encode(&insn);
            prop_assert_eq!(decode(reworded).unwrap(), insn);
        }
    }

    #[test]
    fn disasm_never_panics(insn in arb_insn()) {
        let text = cobra_isa::disasm::format_insn(&insn);
        prop_assert!(!text.is_empty());
    }
}
