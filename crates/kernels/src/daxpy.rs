//! The OpenMP DAXPY kernel of the paper's Figures 1–3.
//!
//! ```c
//! for (j=0; j < REPS; j++)
//!   #pragma omp parallel for
//!   for (i=0; i < ARRAY_SZ; i++)
//!     y[i] = y[i] + a * x[i];
//! ```
//!
//! The binary is produced by `minicc` in the icc -O3 shape: a 6-line
//! prefetch burst for `y`, then a software-pipelined loop issuing one
//! `lfetch.nt1` per array per iteration about 1200 bytes (9 cache lines)
//! ahead. The *working set* is the two arrays together, as in the paper's
//! §2 (so `ARRAY_SZ = working_set_bytes / 16`).

use cobra_isa::{Assembler, CodeAddr, CodeImage};
use cobra_machine::{DataMem, Machine};
use cobra_omp::{abi, OmpRuntime, QuantumHook, Team};

use crate::minicc::{
    emit_coef, emit_ptr, emit_stream_loop, emit_trip_count, LoopMeta, PrefetchPolicy, Stream,
    StreamLoopSpec, StreamOp,
};
use crate::workload::{Arena, Workload, WorkloadRun};

/// DAXPY configuration.
#[derive(Debug, Clone, Copy)]
pub struct DaxpyParams {
    /// Combined size of `x[]` and `y[]` in bytes (the paper sweeps 128 KB,
    /// 512 KB, 2 MB).
    pub working_set_bytes: usize,
    /// Outer repetitions (the `j` loop; the paper uses 10^6 wall-clock
    /// repetitions — simulated runs converge to steady state much sooner).
    pub reps: usize,
    /// Scalar coefficient.
    pub a: f64,
}

impl DaxpyParams {
    pub fn new(working_set_bytes: usize, reps: usize) -> Self {
        assert!(working_set_bytes.is_multiple_of(16));
        DaxpyParams {
            working_set_bytes,
            reps,
            a: 2.0,
        }
    }

    /// Elements per array.
    pub fn n(&self) -> usize {
        self.working_set_bytes / 16
    }
}

/// A built DAXPY workload.
#[derive(Debug, Clone)]
pub struct Daxpy {
    params: DaxpyParams,
    image: CodeImage,
    entry: CodeAddr,
    x_addr: u64,
    y_addr: u64,
    meta: LoopMeta,
}

impl Daxpy {
    /// Generate the binary under `policy` (minimum data-memory budget is
    /// taken from the working set; the harness passes the machine config's
    /// memory size).
    pub fn build(params: DaxpyParams, policy: &PrefetchPolicy, mem_bytes: usize) -> Self {
        let n = params.n();
        let mut arena = Arena::new(mem_bytes);
        let x_addr = arena.alloc_f64(n);
        let y_addr = arena.alloc_f64(n);

        let mut a = Assembler::new();
        let entry = a.symbol("daxpy_body");
        // args: r12 = x base, r13 = y base, r14 = a bits
        emit_coef(&mut a, 6, abi::R_ARG0 + 2);
        emit_ptr(&mut a, 2, abi::R_ARG0, abi::R_LO, 0, 3); // x load
        emit_ptr(&mut a, 3, abi::R_ARG0 + 1, abi::R_LO, 0, 3); // y load
        emit_ptr(&mut a, 4, abi::R_ARG0 + 1, abi::R_LO, 0, 3); // y store
        emit_trip_count(&mut a, 20, abi::R_LO, abi::R_HI);
        // prefetch pointers run `distance_bytes` ahead of the references
        a.addi(27, 2, policy.distance_bytes as i32);
        a.addi(28, 3, policy.distance_bytes as i32);
        let spec = StreamLoopSpec {
            op: StreamOp::Daxpy,
            x1: Stream { ptr: 2, stride: 8 },
            x2: Some(Stream { ptr: 3, stride: 8 }),
            y: Some(Stream { ptr: 4, stride: 8 }),
            n: 20,
            coef: 6,
            acc: 9,
            prefetch: vec![Stream { ptr: 27, stride: 8 }, Stream { ptr: 28, stride: 8 }],
            burst: vec![4],
        };
        let meta = emit_stream_loop(&mut a, policy, &spec);
        a.hlt();
        let image = a.finish();

        Daxpy {
            params,
            image,
            entry,
            x_addr,
            y_addr,
            meta,
        }
    }

    pub fn params(&self) -> &DaxpyParams {
        &self.params
    }

    /// Loop metadata (test introspection; COBRA never reads this).
    pub fn meta(&self) -> &LoopMeta {
        &self.meta
    }

    /// Byte address of `x[]`.
    pub fn x_addr(&self) -> u64 {
        self.x_addr
    }

    /// Byte address of `y[]`.
    pub fn y_addr(&self) -> u64 {
        self.y_addr
    }

    fn x0(&self, i: usize) -> f64 {
        (i % 16) as f64 * 0.25 + 1.0
    }

    fn y0(&self, i: usize) -> f64 {
        (i % 8) as f64 - 3.5
    }
}

impl Workload for Daxpy {
    fn name(&self) -> &'static str {
        "daxpy"
    }

    fn image(&self) -> &CodeImage {
        &self.image
    }

    fn init(&self, mem: &mut DataMem) {
        let n = self.params.n();
        let x: Vec<f64> = (0..n).map(|i| self.x0(i)).collect();
        let y: Vec<f64> = (0..n).map(|i| self.y0(i)).collect();
        mem.write_f64_slice(self.x_addr, &x);
        mem.write_f64_slice(self.y_addr, &y);
    }

    fn run(
        &self,
        machine: &mut Machine,
        team: Team,
        rt: &OmpRuntime,
        hook: &mut dyn QuantumHook,
    ) -> WorkloadRun {
        let start = machine.cycle();
        let args = [
            self.x_addr as i64,
            self.y_addr as i64,
            self.params.a.to_bits() as i64,
        ];
        for _ in 0..self.params.reps {
            rt.parallel_for(
                machine,
                team,
                self.entry,
                0,
                self.params.n() as i64,
                &args,
                hook,
            );
        }
        WorkloadRun {
            cycles: machine.cycle() - start,
        }
    }

    fn verify(&self, mem: &DataMem) -> Result<(), String> {
        let n = self.params.n();
        for i in 0..n {
            let mut want = self.y0(i);
            for _ in 0..self.params.reps {
                want = self.params.a.mul_add(self.x0(i), want);
            }
            let got = mem.read_f64(self.y_addr + 8 * i as u64);
            if got != want {
                return Err(format!("y[{i}] = {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::execute_plain;
    use cobra_machine::{Event, MachineConfig};

    #[test]
    fn daxpy_verifies_under_every_policy_and_team() {
        let cfg = MachineConfig::smp4();
        for policy in [
            PrefetchPolicy::aggressive(),
            PrefetchPolicy::none(),
            PrefetchPolicy::aggressive_excl(),
        ] {
            for threads in [1, 2, 4] {
                let d = Daxpy::build(DaxpyParams::new(32 * 1024, 3), &policy, cfg.mem_bytes);
                let (_m, run) = execute_plain(&d, &cfg, Team::new(threads));
                assert!(run.cycles > 0);
            }
        }
    }

    #[test]
    fn static_lfetch_count_matches_figure2_shape() {
        let cfg = MachineConfig::smp4();
        let d = Daxpy::build(
            DaxpyParams::new(128 * 1024, 1),
            &PrefetchPolicy::aggressive(),
            cfg.mem_bytes,
        );
        // 6-line burst + 2 per-iteration prefetches (x and y streams).
        let count = d.image().count_matching(|i| i.is_lfetch());
        assert_eq!(count, 8);
        assert_eq!(d.meta().lfetch_addrs.len(), 8);
    }

    #[test]
    fn prefetch_crossing_creates_coherent_traffic_at_small_ws() {
        // The §2 pathology: 128 KB working set, 4 threads — the prefetch
        // variant must generate coherent misses the noprefetch variant
        // avoids.
        let cfg = MachineConfig::smp4();
        let run = |policy: PrefetchPolicy| {
            // Enough repetitions to reach the steady state (the paper runs
            // 10^6; the crossover here is ~6).
            let d = Daxpy::build(DaxpyParams::new(128 * 1024, 16), &policy, cfg.mem_bytes);
            let (m, run) = execute_plain(&d, &cfg, Team::new(4));
            (m.total_stats(), run.cycles)
        };
        let (with_stats, with_cycles) = run(PrefetchPolicy::aggressive());
        let (without_stats, without_cycles) = run(PrefetchPolicy::none());
        assert!(
            with_stats.coherent_events() > 2 * without_stats.coherent_events().max(1),
            "prefetch: {} coherent events, noprefetch: {}",
            with_stats.coherent_events(),
            without_stats.coherent_events()
        );
        assert!(
            without_cycles < with_cycles,
            "noprefetch must win at 128K/4t: {without_cycles} vs {with_cycles}"
        );
    }

    #[test]
    fn prefetch_wins_at_large_ws_single_thread() {
        let cfg = MachineConfig::smp4();
        let run = |policy: PrefetchPolicy| {
            let d = Daxpy::build(DaxpyParams::new(2 * 1024 * 1024, 2), &policy, cfg.mem_bytes);
            let (_m, run) = execute_plain(&d, &cfg, Team::new(1));
            run.cycles
        };
        let with = run(PrefetchPolicy::aggressive());
        let without = run(PrefetchPolicy::none());
        assert!(
            without as f64 > with as f64 * 1.3,
            "prefetch must win at 2M/1t: {with} vs {without}"
        );
    }

    #[test]
    fn excl_reduces_upgrades_at_small_ws() {
        let cfg = MachineConfig::smp4();
        let run = |policy: PrefetchPolicy| {
            let d = Daxpy::build(DaxpyParams::new(128 * 1024, 6), &policy, cfg.mem_bytes);
            let (m, run) = execute_plain(&d, &cfg, Team::new(4));
            (m.total_stats().get(Event::BusUpgrade), run.cycles)
        };
        let (upg_plain, _) = run(PrefetchPolicy::aggressive());
        let (upg_excl, _) = run(PrefetchPolicy::aggressive_excl());
        assert!(
            upg_excl < upg_plain,
            "exclusive prefetching must remove store upgrades: {upg_excl} vs {upg_plain}"
        );
    }
}
