//! IS — integer bucket counting (the ranking core of NPB integer sort).
//!
//! Random keys are histogrammed into per-thread private buckets (indirect
//! integer load/increment/store chains), then the private histograms are
//! merged. Like EP, IS shows no long-latency coherent misses and is
//! excluded from Figures 5–7; its Table 1 row has only a handful of
//! prefetches (the sequential key stream).

use cobra_isa::insn::{CmpRel, Insn, Op};
use cobra_isa::{Assembler, CodeAddr, CodeImage, LfetchHint};
use cobra_machine::{DataMem, Machine};
use cobra_omp::{abi, OmpRuntime, QuantumHook, Team};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::minicc::PrefetchPolicy;
use crate::workload::{Arena, Workload, WorkloadRun};

/// IS configuration.
#[derive(Debug, Clone, Copy)]
pub struct IsParams {
    /// Number of keys.
    pub keys: usize,
    /// Number of buckets (power of two).
    pub buckets: usize,
    /// Ranking repetitions.
    pub reps: usize,
}

impl IsParams {
    /// Class-S-like scale (NPB class S sorts 2^16 keys).
    pub fn class_s() -> Self {
        IsParams {
            keys: 1 << 15,
            buckets: 512,
            reps: 3,
        }
    }
}

const MAX_THREADS: usize = 16;

/// A built IS workload.
pub struct Is {
    params: IsParams,
    image: CodeImage,
    count_entry: CodeAddr,
    merge_entry: CodeAddr,
    key_addr: u64,
    priv_addr: u64,
    counts_addr: u64,
    keys: Vec<i64>,
}

impl Is {
    pub fn build(params: IsParams, policy: &PrefetchPolicy, mem_bytes: usize) -> Self {
        assert!(params.buckets.is_power_of_two());
        let mut rng = SmallRng::seed_from_u64(0x15_15);
        let keys: Vec<i64> = (0..params.keys)
            .map(|_| rng.gen_range(0..params.buckets as i64))
            .collect();

        let mut arena = Arena::new(mem_bytes);
        let key_addr = arena.alloc_i64(params.keys);
        let priv_addr = arena.alloc_i64(MAX_THREADS * params.buckets);
        let counts_addr = arena.alloc_i64(params.buckets);

        let mut a = Assembler::new();
        let count_entry = Self::emit_count(&mut a, &params, policy);
        let merge_entry = Self::emit_merge(&mut a, &params);
        let image = a.finish();

        Is {
            params,
            image,
            count_entry,
            merge_entry,
            key_addr,
            priv_addr,
            counts_addr,
            keys,
        }
    }

    /// Count region: `priv[tid][key[i]] += 1` for `i` in the chunk.
    /// args: r12=key, r13=priv base.
    fn emit_count(a: &mut Assembler, params: &IsParams, policy: &PrefetchPolicy) -> CodeAddr {
        let entry = a.symbol("is_count");
        // r2 = &key[lo]
        a.emit(Insn::new(Op::ShlI {
            dest: 2,
            src: abi::R_LO,
            count: 3,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 2,
            r2: 2,
            r3: abi::R_ARG0,
        }));
        // r3 = priv + tid * buckets * 8
        a.movi(3, (params.buckets * 8) as i64);
        a.emit(Insn::new(Op::Mul {
            dest: 3,
            r2: 3,
            r3: abi::R_TID,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 3,
            r2: 3,
            r3: abi::R_ARG0 + 1,
        }));
        // trip count
        a.emit(Insn::new(Op::Sub {
            dest: 20,
            r2: abi::R_HI,
            r3: abi::R_LO,
        }));
        let done = a.new_label();
        a.emit(Insn::new(Op::CmpI {
            p1: 6,
            p2: 7,
            rel: CmpRel::Ge,
            imm: 0,
            r3: 20,
        }));
        a.br_cond(6, done);
        a.addi(20, 20, -1);
        a.mov_to_lc(20);
        if policy.enabled {
            a.addi(27, 2, policy.distance_bytes as i32);
        }
        let top = a.new_label();
        a.bind(top);
        a.ld8(0, 6, 2, 8); // key
        if policy.enabled {
            a.emit(Insn::new(Op::Lfetch {
                base: 27,
                post_inc: 8,
                hint: LfetchHint::Nt1,
                excl: policy.excl,
            }));
        }
        a.emit(Insn::new(Op::ShlI {
            dest: 6,
            src: 6,
            count: 3,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 6,
            r2: 6,
            r3: 3,
        }));
        a.ld8(0, 7, 6, 0);
        a.addi(7, 7, 1);
        a.st8(0, 7, 6, 0);
        a.br_cloop(top);
        a.bind(done);
        a.hlt();
        entry
    }

    /// Merge region: `counts[b] = Σ_t priv[t][b]` for buckets in the chunk.
    /// args: r12=priv base, r13=counts base.
    fn emit_merge(a: &mut Assembler, params: &IsParams) -> CodeAddr {
        let entry = a.symbol("is_merge");
        // r2 = &counts[lo]; bucket cursor r4 = lo (as byte offset r5 = lo*8)
        a.emit(Insn::new(Op::ShlI {
            dest: 5,
            src: abi::R_LO,
            count: 3,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 2,
            r2: 5,
            r3: abi::R_ARG0 + 1,
        }));
        a.emit(Insn::new(Op::Sub {
            dest: 21,
            r2: abi::R_HI,
            r3: abi::R_LO,
        }));
        let done = a.new_label();
        a.emit(Insn::new(Op::CmpI {
            p1: 6,
            p2: 7,
            rel: CmpRel::Ge,
            imm: 0,
            r3: 21,
        }));
        a.br_cond(6, done);
        let outer = a.new_label();
        a.bind(outer);
        // r3 = &priv[0][b] = priv + r5 ; acc r7 = 0
        a.emit(Insn::new(Op::Add {
            dest: 3,
            r2: 5,
            r3: abi::R_ARG0,
        }));
        a.movi(7, 0);
        // inner over threads: LC = nthreads - 1
        a.addi(22, abi::R_NTH, -1);
        a.mov_to_lc(22);
        let inner = a.new_label();
        a.bind(inner);
        a.ld8(0, 6, 3, (params.buckets * 8) as i32);
        a.emit(Insn::new(Op::Add {
            dest: 7,
            r2: 7,
            r3: 6,
        }));
        a.br_cloop(inner);
        a.st8(0, 7, 2, 8);
        a.addi(5, 5, 8);
        a.addi(21, 21, -1);
        a.emit(Insn::new(Op::Cmp {
            p1: 8,
            p2: 9,
            rel: CmpRel::Gt,
            r2: 21,
            r3: 0,
        }));
        // While-style back edge (a `br.wtop` loop, as icc emits for loops
        // with data-dependent trip counts; no rotating state is live here).
        a.br_wtop(8, outer);
        a.bind(done);
        a.hlt();
        entry
    }
}

impl Workload for Is {
    fn name(&self) -> &'static str {
        "is"
    }

    fn image(&self) -> &CodeImage {
        &self.image
    }

    fn init(&self, mem: &mut DataMem) {
        mem.write_i64_slice(self.key_addr, &self.keys);
        mem.write_i64_slice(
            self.priv_addr,
            &vec![0i64; MAX_THREADS * self.params.buckets],
        );
        mem.write_i64_slice(self.counts_addr, &vec![0i64; self.params.buckets]);
    }

    fn run(
        &self,
        machine: &mut Machine,
        team: Team,
        rt: &OmpRuntime,
        hook: &mut dyn QuantumHook,
    ) -> WorkloadRun {
        let start = machine.cycle();
        for _ in 0..self.params.reps {
            rt.parallel_for(
                machine,
                team,
                self.count_entry,
                0,
                self.params.keys as i64,
                &[self.key_addr as i64, self.priv_addr as i64],
                hook,
            );
            rt.parallel_for(
                machine,
                team,
                self.merge_entry,
                0,
                self.params.buckets as i64,
                &[self.priv_addr as i64, self.counts_addr as i64],
                hook,
            );
        }
        WorkloadRun {
            cycles: machine.cycle() - start,
        }
    }

    #[allow(clippy::needless_range_loop)] // b addresses memory and indexes hist
    fn verify(&self, mem: &DataMem) -> Result<(), String> {
        let mut hist = vec![0i64; self.params.buckets];
        for &k in &self.keys {
            hist[k as usize] += 1;
        }
        for b in 0..self.params.buckets {
            let want = hist[b] * self.params.reps as i64;
            let got = mem.read_u64(self.counts_addr + 8 * b as u64) as i64;
            if got != want {
                return Err(format!("counts[{b}] = {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::execute_plain;
    use cobra_machine::MachineConfig;

    fn small() -> IsParams {
        IsParams {
            keys: 3000,
            buckets: 64,
            reps: 2,
        }
    }

    #[test]
    fn is_histogram_matches_for_all_team_sizes() {
        let cfg = MachineConfig::smp4();
        for threads in [1, 2, 4] {
            let is = Is::build(small(), &PrefetchPolicy::aggressive(), cfg.mem_bytes);
            execute_plain(&is, &cfg, Team::new(threads));
        }
    }

    #[test]
    fn is_has_few_prefetches() {
        let cfg = MachineConfig::smp4();
        let is = Is::build(small(), &PrefetchPolicy::aggressive(), cfg.mem_bytes);
        let n = is.image().count_matching(|i| i.is_lfetch());
        assert!(n <= 2, "IS prefetches only the key stream, got {n}");
    }
}
