//! CG — conjugate gradient with a random sparse matrix (CSR), the NPB
//! kernel that shows the largest L3-miss reductions in the paper's Fig. 6
//! (−39.5 % on the SMP).
//!
//! Unlike the sweep skeletons this is a real CG iteration: `q = A·p`,
//! `α = ρ/(p·q)`, vector updates, `ρ' = r·r`, `β = ρ'/ρ`, `p = r + β·p`.
//! The matrix-vector product walks CSR arrays sequentially (prefetched
//! streams for `vals`/`colidx`) with indirect gathers from `x` — the mix
//! that makes CG's partition-boundary sharing pattern irregular. Scalar
//! reductions are computed as per-thread partials (one cache line apart)
//! combined by the host between regions, as an OpenMP reduction clause
//! would.

use cobra_isa::insn::{CmpRel, Insn, Op};
use cobra_isa::{Assembler, CodeAddr, CodeImage};
use cobra_machine::{DataMem, Machine};
use cobra_omp::{abi, OmpRuntime, QuantumHook, Team};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::minicc::{
    emit_coef, emit_ptr, emit_stream_loop, emit_trip_count, PrefetchPolicy, Stream, StreamLoopSpec,
    StreamOp,
};
use crate::workload::{Arena, Workload, WorkloadRun};

/// CG configuration.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// Matrix dimension.
    pub n: usize,
    /// Nonzeros per row (diagonal included).
    pub row_nnz: usize,
    /// CG iterations.
    pub iterations: usize,
}

impl CgParams {
    /// Class-S-like scale (NPB class S: n=1400, niter=15).
    pub fn class_s() -> Self {
        CgParams {
            n: 1400,
            row_nnz: 8,
            iterations: 15,
        }
    }
}

/// Maximum team size partial-sum slots are laid out for.
const MAX_THREADS: usize = 16;

#[derive(Debug, Clone)]
struct Layout {
    rowptr: u64,
    colidx: u64,
    vals: u64,
    x: u64,
    p: u64,
    q: u64,
    r: u64,
    z: u64,
    partials: u64,
}

/// A built CG workload.
pub struct Cg {
    params: CgParams,
    image: CodeImage,
    layout: Layout,
    // region entries
    matvec: CodeAddr,
    dot_pq: CodeAddr,
    dot_rr: CodeAddr,
    axpy_z: CodeAddr,
    axpy_r: CodeAddr,
    triad_p: CodeAddr,
    // host-side matrix + expected solution
    rowptr: Vec<i64>,
    colidx: Vec<i64>,
    vals: Vec<f64>,
    b: Vec<f64>,
    expect_z: Vec<f64>,
    expect_rho: f64,
}

impl Cg {
    pub fn build(params: CgParams, policy: &PrefetchPolicy, mem_bytes: usize) -> Self {
        let n = params.n;
        let (rowptr, colidx, vals) = Self::make_matrix(params);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect();

        let mut arena = Arena::new(mem_bytes);
        let layout = Layout {
            rowptr: arena.alloc_i64(n + 1),
            colidx: arena.alloc_i64(colidx.len()),
            vals: arena.alloc_f64(vals.len()),
            x: arena.alloc_f64(n),
            p: arena.alloc_f64(n),
            q: arena.alloc_f64(n),
            r: arena.alloc_f64(n),
            z: arena.alloc_f64(n),
            // one partial per line so threads never false-share the slots
            partials: arena.alloc_bytes(128 * MAX_THREADS as u64),
        };

        let mut a = Assembler::new();
        let matvec = Self::emit_matvec(&mut a, policy);
        let dot_pq = Self::emit_dot(&mut a, "dot_pq", policy);
        let dot_rr = Self::emit_dot(&mut a, "dot_rr", policy);
        let axpy_z = Self::emit_axpy(&mut a, "axpy_z", policy);
        let axpy_r = Self::emit_axpy(&mut a, "axpy_r", policy);
        let triad_p = Self::emit_triad(&mut a, "triad_p", policy);
        let image = a.finish();

        let (expect_z, expect_rho) = Self::host_cg(params, &rowptr, &colidx, &vals, &b);

        Cg {
            params,
            image,
            layout,
            matvec,
            dot_pq,
            dot_rr,
            axpy_z,
            axpy_r,
            triad_p,
            rowptr,
            colidx,
            vals,
            b,
            expect_z,
            expect_rho,
        }
    }

    fn make_matrix(params: CgParams) -> (Vec<i64>, Vec<i64>, Vec<f64>) {
        let n = params.n;
        let mut rng = SmallRng::seed_from_u64(0xC0B7A);
        let mut rowptr = Vec::with_capacity(n + 1);
        let mut colidx = Vec::new();
        let mut vals = Vec::new();
        rowptr.push(0i64);
        for row in 0..n {
            // Diagonal first (diagonally dominant => CG is stable).
            colidx.push(row as i64);
            vals.push(10.0);
            for _ in 0..params.row_nnz - 1 {
                colidx.push(rng.gen_range(0..n) as i64);
                vals.push(rng.gen_range(-0.5..0.5));
            }
            rowptr.push(colidx.len() as i64);
        }
        (rowptr, colidx, vals)
    }

    /// Sparse matvec region: rows `[lo,hi)` of `q = A·p`.
    /// args: r12=rowptr, r13=colidx, r14=vals, r15=p, r16=q.
    fn emit_matvec(a: &mut Assembler, policy: &PrefetchPolicy) -> CodeAddr {
        let entry = a.symbol("cg_matvec");
        emit_ptr(a, 2, abi::R_ARG0, abi::R_LO, 0, 3); // &rowptr[lo]
        emit_ptr(a, 5, abi::R_ARG0 + 4, abi::R_LO, 0, 3); // &q[lo]
        emit_trip_count(a, 21, abi::R_LO, abi::R_HI);
        let done = a.new_label();
        a.emit(Insn::new(Op::CmpI {
            p1: 6,
            p2: 7,
            rel: CmpRel::Ge,
            imm: 0,
            r3: 21,
        }));
        a.br_cond(6, done);
        let outer = a.new_label();
        a.bind(outer);
        a.ld8(0, 6, 2, 8); // start = rowptr[row]; r2 -> rowptr[row+1]
        a.ld8(0, 7, 2, 0); // end
        a.emit(Insn::new(Op::ShlI {
            dest: 17,
            src: 6,
            count: 3,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 3,
            r2: 17,
            r3: abi::R_ARG0 + 2,
        })); // &vals[start]
        a.emit(Insn::new(Op::Add {
            dest: 4,
            r2: 17,
            r3: abi::R_ARG0 + 1,
        })); // &colidx[start]
        a.emit(Insn::new(Op::Sub {
            dest: 18,
            r2: 7,
            r3: 6,
        })); // count
        a.emit(Insn::new(Op::FmaD {
            dest: 9,
            f1: 0,
            f2: 0,
            f3: 0,
        })); // acc = 0
        let store = a.new_label();
        a.emit(Insn::new(Op::CmpI {
            p1: 6,
            p2: 7,
            rel: CmpRel::Ge,
            imm: 0,
            r3: 18,
        }));
        a.br_cond(6, store);
        a.addi(18, 18, -1);
        a.mov_to_lc(18);
        if policy.enabled {
            a.addi(27, 3, policy.distance_bytes as i32);
            a.addi(28, 4, policy.distance_bytes as i32);
        }
        let inner = a.new_label();
        a.bind(inner);
        a.ld8(0, 19, 4, 8); // col = colidx[k]
        a.ldfd(0, 10, 3, 8); // v = vals[k]
        if policy.enabled {
            a.emit(Insn::new(Op::Lfetch {
                base: 27,
                post_inc: 8,
                hint: cobra_isa::LfetchHint::Nt1,
                excl: policy.excl,
            }));
            a.emit(Insn::new(Op::Lfetch {
                base: 28,
                post_inc: 8,
                hint: cobra_isa::LfetchHint::Nt1,
                excl: policy.excl,
            }));
        }
        a.emit(Insn::new(Op::ShlI {
            dest: 19,
            src: 19,
            count: 3,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 19,
            r2: 19,
            r3: abi::R_ARG0 + 3,
        })); // &p[col]
        a.ldfd(0, 11, 19, 0);
        a.emit(Insn::new(Op::FmaD {
            dest: 9,
            f1: 10,
            f2: 11,
            f3: 9,
        }));
        a.br_cloop(inner);
        a.bind(store);
        a.stfd(0, 9, 5, 8); // q[row] = acc
        a.addi(21, 21, -1);
        a.emit(Insn::new(Op::Cmp {
            p1: 8,
            p2: 9,
            rel: CmpRel::Gt,
            r2: 21,
            r3: 0,
        }));
        // Row loop with a data-dependent body: while-style back edge
        // (no rotating state is live across it).
        a.br_wtop(8, outer);
        a.bind(done);
        a.hlt();
        entry
    }

    /// Dot region: `partials[tid] = Σ x1[i]*x2[i]` over the chunk.
    /// args: r12=x1, r13=x2, r14=partials base.
    fn emit_dot(a: &mut Assembler, name: &str, policy: &PrefetchPolicy) -> CodeAddr {
        let entry = a.symbol(name);
        emit_ptr(a, 2, abi::R_ARG0, abi::R_LO, 0, 3);
        emit_ptr(a, 3, abi::R_ARG0 + 1, abi::R_LO, 0, 3);
        emit_trip_count(a, 20, abi::R_LO, abi::R_HI);
        a.addi(27, 2, policy.distance_bytes as i32);
        a.addi(28, 3, policy.distance_bytes as i32);
        a.emit(Insn::new(Op::FmaD {
            dest: 9,
            f1: 0,
            f2: 0,
            f3: 0,
        })); // acc = 0
        let spec = StreamLoopSpec {
            op: StreamOp::Dot,
            x1: Stream { ptr: 2, stride: 8 },
            x2: Some(Stream { ptr: 3, stride: 8 }),
            y: None,
            n: 20,
            coef: 6,
            acc: 9,
            prefetch: vec![Stream { ptr: 27, stride: 8 }, Stream { ptr: 28, stride: 8 }],
            burst: vec![],
        };
        emit_stream_loop(a, policy, &spec);
        // partials[tid] (one line per slot: tid << 7)
        a.emit(Insn::new(Op::ShlI {
            dest: 7,
            src: abi::R_TID,
            count: 7,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 7,
            r2: 7,
            r3: abi::R_ARG0 + 2,
        }));
        a.stfd(0, 9, 7, 0);
        a.hlt();
        entry
    }

    /// AXPY region: `y[i] = y[i] + coef*x[i]`.
    /// args: r12=x, r13=y, r14=coef bits.
    fn emit_axpy(a: &mut Assembler, name: &str, policy: &PrefetchPolicy) -> CodeAddr {
        let entry = a.symbol(name);
        emit_coef(a, 6, abi::R_ARG0 + 2);
        emit_ptr(a, 2, abi::R_ARG0, abi::R_LO, 0, 3);
        emit_ptr(a, 3, abi::R_ARG0 + 1, abi::R_LO, 0, 3);
        emit_ptr(a, 4, abi::R_ARG0 + 1, abi::R_LO, 0, 3);
        emit_trip_count(a, 20, abi::R_LO, abi::R_HI);
        a.addi(27, 2, policy.distance_bytes as i32);
        a.addi(28, 3, policy.distance_bytes as i32);
        let spec = StreamLoopSpec {
            op: StreamOp::Daxpy,
            x1: Stream { ptr: 2, stride: 8 },
            x2: Some(Stream { ptr: 3, stride: 8 }),
            y: Some(Stream { ptr: 4, stride: 8 }),
            n: 20,
            coef: 6,
            acc: 9,
            prefetch: vec![Stream { ptr: 27, stride: 8 }, Stream { ptr: 28, stride: 8 }],
            burst: vec![4],
        };
        emit_stream_loop(a, policy, &spec);
        a.hlt();
        entry
    }

    /// Triad region: `p[i] = r[i] + coef*p[i]` (the `p = r + βp` update).
    /// args: r12=p, r13=r, r14=coef bits.
    fn emit_triad(a: &mut Assembler, name: &str, policy: &PrefetchPolicy) -> CodeAddr {
        let entry = a.symbol(name);
        emit_coef(a, 6, abi::R_ARG0 + 2);
        emit_ptr(a, 2, abi::R_ARG0, abi::R_LO, 0, 3); // p load
        emit_ptr(a, 3, abi::R_ARG0 + 1, abi::R_LO, 0, 3); // r load
        emit_ptr(a, 4, abi::R_ARG0, abi::R_LO, 0, 3); // p store
        emit_trip_count(a, 20, abi::R_LO, abi::R_HI);
        a.addi(27, 2, policy.distance_bytes as i32);
        a.addi(28, 3, policy.distance_bytes as i32);
        let spec = StreamLoopSpec {
            op: StreamOp::Triad,
            x1: Stream { ptr: 2, stride: 8 },
            x2: Some(Stream { ptr: 3, stride: 8 }),
            y: Some(Stream { ptr: 4, stride: 8 }),
            n: 20,
            coef: 6,
            acc: 9,
            prefetch: vec![Stream { ptr: 27, stride: 8 }, Stream { ptr: 28, stride: 8 }],
            burst: vec![4],
        };
        emit_stream_loop(a, policy, &spec);
        a.hlt();
        entry
    }

    fn host_matvec(rowptr: &[i64], colidx: &[i64], vals: &[f64], p: &[f64], q: &mut [f64]) {
        for row in 0..q.len() {
            let mut acc = 0.0f64;
            for k in rowptr[row] as usize..rowptr[row + 1] as usize {
                acc = vals[k].mul_add(p[colidx[k] as usize], acc);
            }
            q[row] = acc;
        }
    }

    /// Host-side CG mirror (sequential reductions; verification uses a
    /// tolerance because the simulated run sums per-thread partials).
    fn host_cg(
        params: CgParams,
        rowptr: &[i64],
        colidx: &[i64],
        vals: &[f64],
        b: &[f64],
    ) -> (Vec<f64>, f64) {
        let n = params.n;
        let mut z = vec![0.0; n];
        let mut r = b.to_vec();
        let mut p = b.to_vec();
        let mut q = vec![0.0; n];
        let mut rho: f64 = r.iter().map(|v| v * v).sum();
        for _ in 0..params.iterations {
            Self::host_matvec(rowptr, colidx, vals, &p, &mut q);
            let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            let alpha = rho / pq;
            for i in 0..n {
                z[i] = alpha.mul_add(p[i], z[i]);
                r[i] = (-alpha).mul_add(q[i], r[i]);
            }
            let rho_new: f64 = r.iter().map(|v| v * v).sum();
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                p[i] = beta.mul_add(p[i], r[i]);
            }
        }
        (z, rho)
    }

    fn sum_partials(&self, machine: &Machine, nthreads: usize) -> f64 {
        (0..nthreads)
            .map(|t| {
                machine
                    .shared
                    .mem
                    .read_f64(self.layout.partials + 128 * t as u64)
            })
            .sum()
    }
}

impl Workload for Cg {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn image(&self) -> &CodeImage {
        &self.image
    }

    fn init(&self, mem: &mut DataMem) {
        mem.write_i64_slice(self.layout.rowptr, &self.rowptr);
        mem.write_i64_slice(self.layout.colidx, &self.colidx);
        mem.write_f64_slice(self.layout.vals, &self.vals);
        mem.write_f64_slice(self.layout.x, &self.b);
        mem.write_f64_slice(self.layout.p, &self.b);
        mem.write_f64_slice(self.layout.r, &self.b);
        mem.write_f64_slice(self.layout.q, &vec![0.0; self.params.n]);
        mem.write_f64_slice(self.layout.z, &vec![0.0; self.params.n]);
    }

    fn run(
        &self,
        machine: &mut Machine,
        team: Team,
        rt: &OmpRuntime,
        hook: &mut dyn QuantumHook,
    ) -> WorkloadRun {
        let start = machine.cycle();
        let n = self.params.n as i64;
        let l = &self.layout;
        // rho = r . r
        rt.parallel_for(
            machine,
            team,
            self.dot_rr,
            0,
            n,
            &[l.r as i64, l.r as i64, l.partials as i64],
            hook,
        );
        let mut rho = self.sum_partials(machine, team.num_threads);
        for _ in 0..self.params.iterations {
            // q = A p
            rt.parallel_for(
                machine,
                team,
                self.matvec,
                0,
                n,
                &[
                    l.rowptr as i64,
                    l.colidx as i64,
                    l.vals as i64,
                    l.p as i64,
                    l.q as i64,
                ],
                hook,
            );
            // alpha = rho / (p.q)
            rt.parallel_for(
                machine,
                team,
                self.dot_pq,
                0,
                n,
                &[l.p as i64, l.q as i64, l.partials as i64],
                hook,
            );
            let pq = self.sum_partials(machine, team.num_threads);
            let alpha = rho / pq;
            // z += alpha p ; r -= alpha q
            rt.parallel_for(
                machine,
                team,
                self.axpy_z,
                0,
                n,
                &[l.p as i64, l.z as i64, alpha.to_bits() as i64],
                hook,
            );
            rt.parallel_for(
                machine,
                team,
                self.axpy_r,
                0,
                n,
                &[l.q as i64, l.r as i64, (-alpha).to_bits() as i64],
                hook,
            );
            // rho' = r.r ; beta = rho'/rho
            rt.parallel_for(
                machine,
                team,
                self.dot_rr,
                0,
                n,
                &[l.r as i64, l.r as i64, l.partials as i64],
                hook,
            );
            let rho_new = self.sum_partials(machine, team.num_threads);
            let beta = rho_new / rho;
            rho = rho_new;
            // p = r + beta p
            rt.parallel_for(
                machine,
                team,
                self.triad_p,
                0,
                n,
                &[l.p as i64, l.r as i64, beta.to_bits() as i64],
                hook,
            );
        }
        WorkloadRun {
            cycles: machine.cycle() - start,
        }
    }

    fn verify(&self, mem: &DataMem) -> Result<(), String> {
        let z = mem.read_f64_slice(self.layout.z, self.params.n);
        for (i, (&got, &want)) in z.iter().zip(&self.expect_z).enumerate() {
            let tol = 1e-6 * want.abs().max(1.0);
            if (got - want).abs() > tol {
                return Err(format!("z[{i}] = {got}, expected {want}"));
            }
        }
        // Residual magnitude should match the host mirror's trajectory.
        let r = mem.read_f64_slice(self.layout.r, self.params.n);
        let rho: f64 = r.iter().map(|v| v * v).sum();
        let tol = 1e-6 * self.expect_rho.abs().max(1e-12);
        if (rho - self.expect_rho).abs() > tol {
            return Err(format!("rho = {rho}, expected {}", self.expect_rho));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::execute_plain;
    use cobra_machine::MachineConfig;

    fn small() -> CgParams {
        CgParams {
            n: 120,
            row_nnz: 5,
            iterations: 6,
        }
    }

    #[test]
    fn cg_converges_and_verifies() {
        let cfg = MachineConfig::smp4();
        for threads in [1, 2, 4] {
            let cg = Cg::build(small(), &PrefetchPolicy::aggressive(), cfg.mem_bytes);
            // Residual must actually shrink (diagonally dominant system).
            let rho0: f64 = cg.b.iter().map(|v| v * v).sum();
            assert!(
                cg.expect_rho < rho0 * 1e-3,
                "CG failed to converge on host mirror"
            );
            let (_m, run) = execute_plain(&cg, &cfg, Team::new(threads));
            assert!(run.cycles > 0, "threads={threads}");
        }
    }

    #[test]
    fn cg_verifies_under_all_policies() {
        let cfg = MachineConfig::smp4();
        for policy in [
            PrefetchPolicy::none(),
            PrefetchPolicy::aggressive(),
            PrefetchPolicy::aggressive_excl(),
        ] {
            let cg = Cg::build(small(), &policy, cfg.mem_bytes);
            execute_plain(&cg, &cfg, Team::new(4));
        }
    }

    #[test]
    fn cg_binary_contains_cloop_inner_and_ctop_vector_loops() {
        let cfg = MachineConfig::smp4();
        let cg = Cg::build(small(), &PrefetchPolicy::aggressive(), cfg.mem_bytes);
        let cloops = cg
            .image()
            .count_matching(|i| matches!(i.op, Op::BrCloop { .. }));
        let ctops = cg
            .image()
            .count_matching(|i| matches!(i.op, Op::BrCtop { .. }));
        assert!(cloops >= 1, "matvec inner loop uses br.cloop");
        assert_eq!(ctops, 5, "five pipelined vector loops");
        assert!(cg.image().count_matching(|i| i.is_lfetch()) > 10);
    }
}
