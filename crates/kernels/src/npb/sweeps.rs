//! Pass tables for the sweep-style benchmarks: BT, SP, LU (simulated CFD
//! applications) and FT, MG (grid kernels).
//!
//! Each benchmark is a class-S-scaled skeleton: the pass tables reproduce
//! the *memory structure* of the originals — per-direction stencil sweeps
//! for the CFD codes (shifts of ±1, ±N, ±N² over a flattened N³ grid),
//! long-stride butterfly passes for FT, and restriction/prolongation/smooth
//! V-cycles for MG — not their numerics. The coefficient magnitudes keep
//! the iterated values bounded. See DESIGN.md for the substitution
//! rationale.

use super::sweep::{ArrayDecl, PassSpec, SweepKernel};
use crate::minicc::{PrefetchPolicy, StreamOp};

/// Grid edge for the simulated CFD applications (class S BT/SP use 12³;
/// we use 16³ so the per-array footprint of 32 KB sits squarely in the
/// coherent-miss regime on a 256 KB L2).
const CFD_N: usize = 16;

fn cfd_arrays() -> Vec<ArrayDecl> {
    let n3 = CFD_N * CFD_N * CFD_N;
    let halo = CFD_N * CFD_N; // covers ±N² z-direction shifts
    vec![
        ArrayDecl {
            name: "u",
            len: n3,
            halo,
        },
        ArrayDecl {
            name: "rhs",
            len: n3,
            halo,
        },
    ]
}

/// BT: compute_rhs (7 passes) + x/y/z block-solves (6) + add (1).
pub fn bt(policy: &PrefetchPolicy, mem_bytes: usize) -> SweepKernel {
    let n3 = CFD_N * CFD_N * CFD_N;
    let n = CFD_N as i64;
    let (u, rhs) = (0usize, 1usize);
    let passes = vec![
        PassSpec::shifted("rhs_init", StreamOp::Scale, rhs, u, 0, 0.45, n3),
        PassSpec::shifted("rhs_xm", StreamOp::Daxpy, rhs, u, -1, 0.06, n3),
        PassSpec::shifted("rhs_xp", StreamOp::Daxpy, rhs, u, 1, 0.06, n3),
        PassSpec::shifted("rhs_ym", StreamOp::Daxpy, rhs, u, -n, 0.05, n3),
        PassSpec::shifted("rhs_yp", StreamOp::Daxpy, rhs, u, n, 0.05, n3),
        PassSpec::shifted("rhs_zm", StreamOp::Daxpy, rhs, u, -n * n, 0.04, n3),
        PassSpec::shifted("rhs_zp", StreamOp::Daxpy, rhs, u, n * n, 0.04, n3),
        PassSpec::shifted("x_solve_m", StreamOp::Daxpy, u, rhs, -1, 0.08, n3),
        PassSpec::shifted("x_solve_p", StreamOp::Daxpy, u, rhs, 1, 0.08, n3),
        PassSpec::shifted("y_solve_m", StreamOp::Daxpy, u, rhs, -n, 0.07, n3),
        PassSpec::shifted("y_solve_p", StreamOp::Daxpy, u, rhs, n, 0.07, n3),
        PassSpec::shifted("z_solve_m", StreamOp::Daxpy, u, rhs, -n * n, 0.06, n3),
        PassSpec::shifted("z_solve_p", StreamOp::Daxpy, u, rhs, n * n, 0.06, n3),
        PassSpec::shifted("add", StreamOp::Daxpy, u, rhs, 0, 0.1, n3),
    ];
    SweepKernel::build("bt", cfd_arrays(), passes, 8, policy, mem_bytes)
}

/// SP: like BT but with the extra invr/tx scaling passes of the scalar
/// penta-diagonal solver (more loops — SP's binary has the larger static
/// prefetch count in Table 1).
pub fn sp(policy: &PrefetchPolicy, mem_bytes: usize) -> SweepKernel {
    let n3 = CFD_N * CFD_N * CFD_N;
    let n = CFD_N as i64;
    let (u, rhs) = (0usize, 1usize);
    let mut passes = vec![
        PassSpec::shifted("rhs_init", StreamOp::Scale, rhs, u, 0, 0.4, n3),
        PassSpec::shifted("rhs_xm", StreamOp::Daxpy, rhs, u, -1, 0.05, n3),
        PassSpec::shifted("rhs_xp", StreamOp::Daxpy, rhs, u, 1, 0.05, n3),
        PassSpec::shifted("rhs_ym", StreamOp::Daxpy, rhs, u, -n, 0.05, n3),
        PassSpec::shifted("rhs_yp", StreamOp::Daxpy, rhs, u, n, 0.05, n3),
        PassSpec::shifted("rhs_zm", StreamOp::Daxpy, rhs, u, -n * n, 0.04, n3),
        PassSpec::shifted("rhs_zp", StreamOp::Daxpy, rhs, u, n * n, 0.04, n3),
        PassSpec::shifted("txinvr", StreamOp::Daxpy, rhs, u, 0, 0.03, n3),
    ];
    for (dir, off) in [("x", 1i64), ("y", n), ("z", n * n)] {
        passes.push(PassSpec::shifted(
            match dir {
                "x" => "x_solve_m",
                "y" => "y_solve_m",
                _ => "z_solve_m",
            },
            StreamOp::Daxpy,
            u,
            rhs,
            -off,
            0.07,
            n3,
        ));
        passes.push(PassSpec::shifted(
            match dir {
                "x" => "x_solve_p",
                "y" => "y_solve_p",
                _ => "z_solve_p",
            },
            StreamOp::Daxpy,
            u,
            rhs,
            off,
            0.07,
            n3,
        ));
        passes.push(PassSpec::shifted(
            match dir {
                "x" => "ninvr_x",
                "y" => "pinvr_y",
                _ => "tzetar_z",
            },
            StreamOp::Daxpy,
            u,
            rhs,
            0,
            0.02,
            n3,
        ));
    }
    passes.push(PassSpec::shifted(
        "add",
        StreamOp::Daxpy,
        u,
        rhs,
        0,
        0.1,
        n3,
    ));
    SweepKernel::build("sp", cfd_arrays(), passes, 8, policy, mem_bytes)
}

/// LU: SSOR — lower-triangular sweep (blts: negative shifts), upper sweep
/// (buts: positive shifts), plus the rhs and relaxation passes.
pub fn lu(policy: &PrefetchPolicy, mem_bytes: usize) -> SweepKernel {
    let n3 = CFD_N * CFD_N * CFD_N;
    let n = CFD_N as i64;
    let (u, rhs) = (0usize, 1usize);
    let passes = vec![
        PassSpec::shifted("rhs", StreamOp::Scale, rhs, u, 0, 0.5, n3),
        PassSpec::shifted("rhs_x", StreamOp::Daxpy, rhs, u, 1, 0.05, n3),
        PassSpec::shifted("rhs_y", StreamOp::Daxpy, rhs, u, n, 0.05, n3),
        PassSpec::shifted("rhs_z", StreamOp::Daxpy, rhs, u, n * n, 0.04, n3),
        PassSpec::shifted("blts_x", StreamOp::Daxpy, u, rhs, -1, 0.08, n3),
        PassSpec::shifted("blts_y", StreamOp::Daxpy, u, rhs, -n, 0.07, n3),
        PassSpec::shifted("blts_z", StreamOp::Daxpy, u, rhs, -n * n, 0.06, n3),
        PassSpec::shifted("buts_x", StreamOp::Daxpy, u, rhs, 1, 0.08, n3),
        PassSpec::shifted("buts_y", StreamOp::Daxpy, u, rhs, n, 0.07, n3),
        PassSpec::shifted("buts_z", StreamOp::Daxpy, u, rhs, n * n, 0.06, n3),
        PassSpec::shifted("ssor", StreamOp::Daxpy, u, rhs, 0, 0.12, n3),
    ];
    SweepKernel::build("lu", cfd_arrays(), passes, 8, policy, mem_bytes)
}

/// FT: butterfly-style combination passes with geometrically growing
/// strides over a complex grid (stored as interleaved re/im `f64`s),
/// ping-ponging between two buffers.
pub fn ft(policy: &PrefetchPolicy, mem_bytes: usize) -> SweepKernel {
    // 32^3 complex points as 2*32^3 f64s; the largest butterfly shift
    // bounds the processed length.
    let total = 2 * 32 * 32 * 32; // 65536 f64 = 512 KB
    let max_shift = 16384usize;
    let len = total - max_shift;
    let (z0, z1) = (0usize, 1usize);
    let arrays = vec![
        ArrayDecl {
            name: "z0",
            len: total,
            halo: 0,
        },
        ArrayDecl {
            name: "z1",
            len: total,
            halo: 0,
        },
    ];
    let mut passes = Vec::new();
    let mut src = z0;
    for (k, s) in [2i64, 8, 64, 512, 4096, 16384].into_iter().enumerate() {
        let dst = if src == z0 { z1 } else { z0 };
        passes.push(PassSpec {
            label: if k % 2 == 0 { "fftz_even" } else { "fftz_odd" },
            op: StreamOp::Triad,
            dst,
            src,
            src2: Some(src),
            src_offset: s,
            src2_offset: 0,
            coef: 0.35,
            dst_stride: 1,
            src_stride: 1,
            len,
        });
        src = dst;
    }
    // After 6 passes the data is back in z0; one checksum-style scale.
    passes.push(PassSpec::shifted(
        "evolve",
        StreamOp::Scale,
        z1,
        z0,
        0,
        0.9,
        len,
    ));
    SweepKernel::build("ft", arrays, passes, 7, policy, mem_bytes)
}

/// MG: V-cycles over three levels of a flattened grid — smooth at the fine
/// level, restrict (stride-2 gather), smooth, restrict, smooth at the
/// coarsest, then prolongate (stride-2 scatter) and smooth back up.
pub fn mg(policy: &PrefetchPolicy, mem_bytes: usize) -> SweepKernel {
    let l0 = 32 * 32 * 32; // 32768 elements, 256 KB
    let l1 = l0 / 2;
    let l2 = l0 / 4;
    let (f0, f1, f2, r0, r1, r2) = (0usize, 1, 2, 3, 4, 5);
    let arrays = vec![
        ArrayDecl {
            name: "f0",
            len: l0,
            halo: 2,
        },
        ArrayDecl {
            name: "f1",
            len: l1,
            halo: 2,
        },
        ArrayDecl {
            name: "f2",
            len: l2,
            halo: 2,
        },
        ArrayDecl {
            name: "r0",
            len: l0,
            halo: 2,
        },
        ArrayDecl {
            name: "r1",
            len: l1,
            halo: 2,
        },
        ArrayDecl {
            name: "r2",
            len: l2,
            halo: 2,
        },
    ];
    let smooth = |lbl: [&'static str; 3], f: usize, r: usize, len: usize| {
        [
            PassSpec::shifted(lbl[0], StreamOp::Scale, r, f, 0, 0.8, len),
            PassSpec::shifted(lbl[1], StreamOp::Daxpy, f, r, -1, 0.05, len),
            PassSpec::shifted(lbl[2], StreamOp::Daxpy, f, r, 1, 0.05, len),
        ]
    };
    let restrict = |lbl: &'static str, coarse: usize, fine: usize, len: usize| PassSpec {
        label: lbl,
        op: StreamOp::Scale,
        dst: coarse,
        src: fine,
        src2: None,
        src_offset: 0,
        src2_offset: 0,
        coef: 0.5,
        dst_stride: 1,
        src_stride: 2,
        len,
    };
    let prolong = |lbl: &'static str, fine: usize, coarse: usize, len: usize| PassSpec {
        label: lbl,
        op: StreamOp::Daxpy,
        dst: fine,
        src: coarse,
        src2: None,
        src_offset: 0,
        src2_offset: 0,
        coef: 0.4,
        dst_stride: 2,
        src_stride: 1,
        len,
    };
    let mut passes = Vec::new();
    passes.extend(smooth(["psinv0_r", "psinv0_m", "psinv0_p"], f0, r0, l0));
    passes.push(restrict("rprj_01", f1, f0, l1));
    passes.extend(smooth(["psinv1_r", "psinv1_m", "psinv1_p"], f1, r1, l1));
    passes.push(restrict("rprj_12", f2, f1, l2));
    passes.extend(smooth(["psinv2_r", "psinv2_m", "psinv2_p"], f2, r2, l2));
    passes.push(prolong("interp_21", f1, f2, l2));
    passes.extend(smooth(["post1_r", "post1_m", "post1_p"], f1, r1, l1));
    passes.push(prolong("interp_10", f0, f1, l1));
    passes.extend(smooth(["post0_r", "post0_m", "post0_p"], f0, r0, l0));
    SweepKernel::build("mg", arrays, passes, 6, policy, mem_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{execute_plain, Workload};
    use cobra_machine::MachineConfig;
    use cobra_omp::Team;

    #[test]
    fn all_sweep_benchmarks_verify_on_4_threads() {
        let cfg = MachineConfig::smp4();
        for (name, k) in [
            ("bt", bt(&PrefetchPolicy::aggressive(), cfg.mem_bytes)),
            ("sp", sp(&PrefetchPolicy::aggressive(), cfg.mem_bytes)),
            ("lu", lu(&PrefetchPolicy::aggressive(), cfg.mem_bytes)),
            ("ft", ft(&PrefetchPolicy::aggressive(), cfg.mem_bytes)),
            ("mg", mg(&PrefetchPolicy::aggressive(), cfg.mem_bytes)),
        ] {
            let (_m, run) = execute_plain(&k, &cfg, Team::new(4));
            assert!(run.cycles > 0, "{name}");
        }
    }

    #[test]
    fn sweep_lfetch_counts_have_table1_shape() {
        let cfg = MachineConfig::smp4();
        let count = |k: &SweepKernel| k.image().count_matching(|i| i.is_lfetch());
        let bt_n = count(&bt(&PrefetchPolicy::aggressive(), cfg.mem_bytes));
        let sp_n = count(&sp(&PrefetchPolicy::aggressive(), cfg.mem_bytes));
        let mg_n = count(&mg(&PrefetchPolicy::aggressive(), cfg.mem_bytes));
        // SP has more loops than BT; MG has the most (Table 1 orders
        // BT 140 < SP 276, MG 419 highest of the grid codes).
        assert!(sp_n > bt_n, "sp={sp_n} bt={bt_n}");
        assert!(mg_n > sp_n, "mg={mg_n} sp={sp_n}");
        assert!(bt_n >= 100, "bt={bt_n}: hundreds of prefetches expected");
    }

    #[test]
    fn noprefetch_binaries_have_zero_lfetch() {
        let cfg = MachineConfig::smp4();
        let k = lu(&PrefetchPolicy::none(), cfg.mem_bytes);
        assert_eq!(k.image().count_matching(|i| i.is_lfetch()), 0);
    }
}
