//! The sweep-kernel engine: benchmarks expressed as sequences of
//! software-pipelined stream passes over shared grids.
//!
//! A *pass* is one `#pragma omp parallel for` loop nest flattened to a
//! strided/shifted stream operation (`dst[i*ds] (op)= coef * src[i*ss + off]`),
//! compiled by `minicc` into its own software-pipelined loop with aggressive
//! prefetching — one loop per source pass, exactly as icc compiles each
//! OpenMP loop separately (this is what makes Table 1's per-binary `lfetch`
//! counts large). The BT/SP/LU/FT/MG skeletons in [`super::sweeps`] are
//! built from pass tables.

use cobra_isa::{Assembler, CodeAddr, CodeImage};
use cobra_machine::{DataMem, Machine};
use cobra_omp::{abi, OmpRuntime, QuantumHook, Team};

use crate::minicc::{
    emit_coef, emit_stream_loop, emit_trip_count, PrefetchPolicy, Stream, StreamLoopSpec, StreamOp,
};
use crate::workload::{Arena, Workload, WorkloadRun};

/// Declaration of one grid array.
#[derive(Debug, Clone, Copy)]
pub struct ArrayDecl {
    pub name: &'static str,
    /// Elements addressable as indices `0..len`.
    pub len: usize,
    /// Extra zero-initialized elements on *each* side for shifted reads.
    pub halo: usize,
}

/// One parallel stream pass.
#[derive(Debug, Clone, Copy)]
pub struct PassSpec {
    pub label: &'static str,
    /// `Copy`/`Scale`/`Daxpy`/`Triad` (`Daxpy` reads and updates `dst`).
    pub op: StreamOp,
    /// Array written (and read, for `Daxpy`).
    pub dst: usize,
    /// Primary source array.
    pub src: usize,
    /// Second source (Triad only).
    pub src2: Option<usize>,
    /// Element offset applied to the `src` pointer (stencil shifts).
    pub src_offset: i64,
    /// Element offset applied to the `src2` pointer.
    pub src2_offset: i64,
    pub coef: f64,
    /// Elements advanced per iteration (1, 2 or 4).
    pub dst_stride: usize,
    pub src_stride: usize,
    /// Iteration count (the parallel range is `0..len`).
    pub len: usize,
}

impl PassSpec {
    /// Unit-stride pass with a source shift.
    pub fn shifted(
        label: &'static str,
        op: StreamOp,
        dst: usize,
        src: usize,
        src_offset: i64,
        coef: f64,
        len: usize,
    ) -> Self {
        PassSpec {
            label,
            op,
            dst,
            src,
            src2: None,
            src_offset,
            src2_offset: 0,
            coef,
            dst_stride: 1,
            src_stride: 1,
            len,
        }
    }

    fn validate(&self, arrays: &[ArrayDecl]) {
        let d = &arrays[self.dst];
        let s = &arrays[self.src];
        assert!(matches!(self.dst_stride, 1 | 2 | 4));
        assert!(matches!(self.src_stride, 1 | 2 | 4));
        assert!(
            self.len * self.dst_stride <= d.len,
            "{}: dst overrun",
            self.label
        );
        let lo = self.src_offset;
        let hi = self.src_offset + (self.len as i64 - 1) * self.src_stride as i64;
        assert!(
            lo >= -(s.halo as i64) && hi < (s.len + s.halo) as i64,
            "{}: src out of halo",
            self.label
        );
        if self.dst == self.src {
            assert!(
                self.op == StreamOp::Daxpy
                    && self.src_offset == 0
                    && self.src_stride == self.dst_stride,
                "{}: in-place pass with a shift would race across chunk boundaries",
                self.label
            );
        }
        if let Some(s2) = self.src2 {
            assert!(self.op == StreamOp::Triad);
            assert_ne!(
                s2, self.dst,
                "{}: Triad src2 must not alias dst",
                self.label
            );
        } else {
            assert_ne!(self.op, StreamOp::Triad);
        }
        assert_ne!(self.op, StreamOp::Dot, "sweep passes have no reductions");
    }
}

fn stride_shift(stride: usize) -> u8 {
    match stride {
        1 => 3,
        2 => 4,
        4 => 5,
        _ => unreachable!("validated"),
    }
}

/// A benchmark made of stream passes repeated for a number of iterations.
pub struct SweepKernel {
    name: &'static str,
    image: CodeImage,
    arrays: Vec<ArrayDecl>,
    /// Byte address of element 0 of each array.
    array_addr: Vec<u64>,
    passes: Vec<PassSpec>,
    entries: Vec<CodeAddr>,
    iterations: usize,
}

impl SweepKernel {
    pub fn build(
        name: &'static str,
        arrays: Vec<ArrayDecl>,
        passes: Vec<PassSpec>,
        iterations: usize,
        policy: &PrefetchPolicy,
        mem_bytes: usize,
    ) -> Self {
        for p in &passes {
            p.validate(&arrays);
        }
        let mut arena = Arena::new(mem_bytes);
        let array_addr: Vec<u64> = arrays
            .iter()
            .map(|d| arena.alloc_f64(d.len + 2 * d.halo) + 8 * d.halo as u64)
            .collect();

        let mut a = Assembler::new();
        let mut entries = Vec::with_capacity(passes.len());
        for pass in &passes {
            entries.push(Self::emit_pass_body(&mut a, pass, policy));
        }
        let image = a.finish();
        SweepKernel {
            name,
            image,
            arrays,
            array_addr,
            passes,
            entries,
            iterations,
        }
    }

    /// Emit one region body. Arguments: `r12` = effective src base (offset
    /// applied), `r13` = second-load base (Triad: src2; Daxpy: dst),
    /// `r14` = dst base, `r15` = coefficient bits.
    fn emit_pass_body(a: &mut Assembler, pass: &PassSpec, policy: &PrefetchPolicy) -> CodeAddr {
        let entry = a.symbol(format!("{}_{}", pass.label, a.here()));
        emit_coef(a, 6, abi::R_ARG0 + 3);
        let s_shift = stride_shift(pass.src_stride);
        let d_shift = stride_shift(pass.dst_stride);
        // x1 = src_eff + (lo << s_shift)
        a.emit(cobra_isa::Insn::new(cobra_isa::insn::Op::ShlI {
            dest: 2,
            src: abi::R_LO,
            count: s_shift,
        }));
        a.emit(cobra_isa::Insn::new(cobra_isa::insn::Op::Add {
            dest: 2,
            r2: 2,
            r3: abi::R_ARG0,
        }));
        let has_x2 = matches!(pass.op, StreamOp::Daxpy | StreamOp::Triad);
        if has_x2 {
            // Daxpy loads dst; Triad loads src2 — both unit-or-dst stride.
            let x2_shift = if pass.op == StreamOp::Daxpy {
                d_shift
            } else {
                stride_shift(pass.src_stride)
            };
            a.emit(cobra_isa::Insn::new(cobra_isa::insn::Op::ShlI {
                dest: 3,
                src: abi::R_LO,
                count: x2_shift,
            }));
            a.emit(cobra_isa::Insn::new(cobra_isa::insn::Op::Add {
                dest: 3,
                r2: 3,
                r3: abi::R_ARG0 + 1,
            }));
        }
        // y = dst + (lo << d_shift)
        a.emit(cobra_isa::Insn::new(cobra_isa::insn::Op::ShlI {
            dest: 4,
            src: abi::R_LO,
            count: d_shift,
        }));
        a.emit(cobra_isa::Insn::new(cobra_isa::insn::Op::Add {
            dest: 4,
            r2: 4,
            r3: abi::R_ARG0 + 2,
        }));
        emit_trip_count(a, 20, abi::R_LO, abi::R_HI);
        // Prefetch pointers: src stream and dst stream.
        a.addi(27, 2, policy.distance_bytes as i32);
        a.addi(28, 4, policy.distance_bytes as i32);

        let src_stride_b = (8 * pass.src_stride) as i32;
        let dst_stride_b = (8 * pass.dst_stride) as i32;
        let x2 = if has_x2 {
            let stride = if pass.op == StreamOp::Daxpy {
                dst_stride_b
            } else {
                src_stride_b
            };
            Some(Stream { ptr: 3, stride })
        } else {
            None
        };
        let spec = StreamLoopSpec {
            op: pass.op,
            x1: Stream {
                ptr: 2,
                stride: src_stride_b,
            },
            x2,
            y: Some(Stream {
                ptr: 4,
                stride: dst_stride_b,
            }),
            n: 20,
            coef: 6,
            acc: 9,
            prefetch: vec![
                Stream {
                    ptr: 27,
                    stride: src_stride_b,
                },
                Stream {
                    ptr: 28,
                    stride: dst_stride_b,
                },
            ],
            burst: vec![4],
        };
        emit_stream_loop(a, policy, &spec);
        a.hlt();
        entry
    }

    fn init_value(arr: usize, i: usize) -> f64 {
        ((i * 7 + arr * 13) % 23) as f64 * 0.125 - 1.0
    }

    /// Host-side mirror of the full schedule (used by `verify`).
    fn mirror(&self) -> Vec<Vec<f64>> {
        let mut data: Vec<Vec<f64>> = self
            .arrays
            .iter()
            .enumerate()
            .map(|(ai, d)| {
                let mut v = vec![0.0; d.len + 2 * d.halo];
                for i in 0..d.len {
                    v[d.halo + i] = Self::init_value(ai, i);
                }
                v
            })
            .collect();
        for _ in 0..self.iterations {
            for pass in &self.passes {
                let halo_s = self.arrays[pass.src].halo as i64;
                let halo_d = self.arrays[pass.dst].halo as i64;
                for i in 0..pass.len as i64 {
                    let sv = data[pass.src]
                        [(halo_s + i * pass.src_stride as i64 + pass.src_offset) as usize];
                    let di = (halo_d + i * pass.dst_stride as i64) as usize;
                    let out = match pass.op {
                        StreamOp::Copy => sv,
                        StreamOp::Scale => pass.coef.mul_add(sv, 0.0),
                        StreamOp::Daxpy => pass.coef.mul_add(sv, data[pass.dst][di]),
                        StreamOp::Triad => {
                            let s2 = pass.src2.expect("validated");
                            let halo_2 = self.arrays[s2].halo as i64;
                            let v2 = data[s2]
                                [(halo_2 + i * pass.src_stride as i64 + pass.src2_offset) as usize];
                            pass.coef.mul_add(sv, v2)
                        }
                        StreamOp::Dot => unreachable!("validated"),
                    };
                    data[pass.dst][di] = out;
                }
            }
        }
        data
    }

    /// Pass count (diagnostics).
    pub fn num_passes(&self) -> usize {
        self.passes.len()
    }
}

impl Workload for SweepKernel {
    fn name(&self) -> &'static str {
        self.name
    }

    fn image(&self) -> &CodeImage {
        &self.image
    }

    fn init(&self, mem: &mut DataMem) {
        for (ai, d) in self.arrays.iter().enumerate() {
            let base = self.array_addr[ai] - 8 * d.halo as u64;
            let mut v = vec![0.0; d.len + 2 * d.halo];
            for i in 0..d.len {
                v[d.halo + i] = Self::init_value(ai, i);
            }
            mem.write_f64_slice(base, &v);
        }
    }

    fn run(
        &self,
        machine: &mut Machine,
        team: Team,
        rt: &OmpRuntime,
        hook: &mut dyn QuantumHook,
    ) -> WorkloadRun {
        let start = machine.cycle();
        for _ in 0..self.iterations {
            for (pass, &entry) in self.passes.iter().zip(&self.entries) {
                let src_eff = (self.array_addr[pass.src] as i64) + 8 * pass.src_offset;
                let x2_eff = match pass.op {
                    StreamOp::Daxpy => self.array_addr[pass.dst] as i64,
                    StreamOp::Triad => {
                        (self.array_addr[pass.src2.expect("validated")] as i64)
                            + 8 * pass.src2_offset
                    }
                    _ => 0,
                };
                let args = [
                    src_eff,
                    x2_eff,
                    self.array_addr[pass.dst] as i64,
                    pass.coef.to_bits() as i64,
                ];
                rt.parallel_for(machine, team, entry, 0, pass.len as i64, &args, hook);
            }
        }
        WorkloadRun {
            cycles: machine.cycle() - start,
        }
    }

    fn verify(&self, mem: &DataMem) -> Result<(), String> {
        let want = self.mirror();
        for (ai, d) in self.arrays.iter().enumerate() {
            let base = self.array_addr[ai] - 8 * d.halo as u64;
            let got = mem.read_f64_slice(base, d.len + 2 * d.halo);
            for (k, (&g, &w)) in got.iter().zip(&want[ai]).enumerate() {
                if g != w {
                    return Err(format!(
                        "{}[{}] (with halo) = {g}, expected {w}",
                        d.name,
                        k as i64 - d.halo as i64
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::execute_plain;
    use cobra_machine::MachineConfig;

    fn toy_kernel(policy: &PrefetchPolicy) -> SweepKernel {
        let arrays = vec![
            ArrayDecl {
                name: "u",
                len: 512,
                halo: 16,
            },
            ArrayDecl {
                name: "r",
                len: 512,
                halo: 16,
            },
            ArrayDecl {
                name: "c",
                len: 256,
                halo: 0,
            },
        ];
        let passes = vec![
            PassSpec::shifted("scale", StreamOp::Scale, 1, 0, 0, 0.5, 512),
            PassSpec::shifted("left", StreamOp::Daxpy, 0, 1, -1, 0.25, 512),
            PassSpec::shifted("right", StreamOp::Daxpy, 0, 1, 1, 0.25, 512),
            // restriction: c[i] = 0.5 * u[2i]
            PassSpec {
                label: "restrict",
                op: StreamOp::Scale,
                dst: 2,
                src: 0,
                src2: None,
                src_offset: 0,
                src2_offset: 0,
                coef: 0.5,
                dst_stride: 1,
                src_stride: 2,
                len: 256,
            },
            // prolongation: u[2i] += 0.3 * c[i]
            PassSpec {
                label: "prolong",
                op: StreamOp::Daxpy,
                dst: 0,
                src: 2,
                src2: None,
                src_offset: 0,
                src2_offset: 0,
                coef: 0.3,
                dst_stride: 2,
                src_stride: 1,
                len: 256,
            },
            // triad: r[i] = c'[i] + 0.1 * u[i+2] with src2 = r? must not alias dst; use u as src2
            PassSpec {
                label: "triad",
                op: StreamOp::Triad,
                dst: 1,
                src: 0,
                src2: Some(0),
                src_offset: 2,
                src2_offset: -2,
                coef: 0.1,
                dst_stride: 1,
                src_stride: 1,
                len: 512,
            },
        ];
        SweepKernel::build("toy", arrays, passes, 3, policy, 8 << 20)
    }

    #[test]
    fn sweep_matches_host_mirror_for_all_team_sizes_and_policies() {
        let cfg = MachineConfig::smp4();
        for policy in [
            PrefetchPolicy::aggressive(),
            PrefetchPolicy::none(),
            PrefetchPolicy::aggressive_excl(),
        ] {
            for threads in [1, 2, 4] {
                let k = toy_kernel(&policy);
                // execute_plain panics internally if verify fails.
                let (_m, run) = execute_plain(&k, &cfg, Team::new(threads));
                assert!(run.cycles > 0);
            }
        }
    }

    #[test]
    fn each_pass_gets_its_own_loop_and_prefetches() {
        let k = toy_kernel(&PrefetchPolicy::aggressive());
        let ctops = k
            .image()
            .count_matching(|i| matches!(i.op, cobra_isa::insn::Op::BrCtop { .. }));
        assert_eq!(ctops, k.num_passes());
        let lfetch = k.image().count_matching(|i| i.is_lfetch());
        // burst 6 + 2 in-loop per pass.
        assert_eq!(lfetch, 8 * k.num_passes());
    }

    #[test]
    #[should_panic(expected = "in-place pass with a shift")]
    fn shifted_inplace_pass_rejected() {
        let arrays = vec![ArrayDecl {
            name: "u",
            len: 64,
            halo: 4,
        }];
        let passes = vec![PassSpec::shifted("bad", StreamOp::Daxpy, 0, 0, 1, 0.5, 64)];
        SweepKernel::build(
            "bad",
            arrays,
            passes,
            1,
            &PrefetchPolicy::aggressive(),
            1 << 20,
        );
    }

    #[test]
    #[should_panic(expected = "src out of halo")]
    fn out_of_halo_shift_rejected() {
        let arrays = vec![
            ArrayDecl {
                name: "u",
                len: 64,
                halo: 2,
            },
            ArrayDecl {
                name: "v",
                len: 64,
                halo: 2,
            },
        ];
        let passes = vec![PassSpec::shifted("bad", StreamOp::Daxpy, 0, 1, 5, 0.5, 64)];
        SweepKernel::build(
            "bad",
            arrays,
            passes,
            1,
            &PrefetchPolicy::aggressive(),
            1 << 20,
        );
    }
}
