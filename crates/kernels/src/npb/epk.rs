//! EP — the embarrassingly parallel kernel: per-thread pseudo-random pair
//! generation and tallying, nearly no shared memory traffic.
//!
//! The paper excludes EP from Figures 5–7 because it shows no long-latency
//! coherent misses (§5.2); it appears in Table 1 with almost no prefetch
//! instructions. Our skeleton draws pairs from a per-thread 64-bit LCG and
//! counts how many land in the unit circle (a Monte-Carlo π tally); each
//! thread's count is written to its own cache line at the end.

use cobra_isa::insn::{CmpRel, Insn, Op};
use cobra_isa::{Assembler, CodeAddr, CodeImage};
use cobra_machine::{DataMem, Machine};
use cobra_omp::{abi, OmpRuntime, QuantumHook, Team};

use crate::minicc::PrefetchPolicy;
use crate::workload::{Arena, Workload, WorkloadRun};

/// EP configuration.
#[derive(Debug, Clone, Copy)]
pub struct EpParams {
    /// Number of random pairs to draw (split over threads).
    pub pairs: usize,
}

impl EpParams {
    /// Class-S-like scale (NPB class S draws 2^24 pairs; we scale to 2^16
    /// simulated pairs, which dominates the run the same way).
    pub fn class_s() -> Self {
        EpParams { pairs: 1 << 16 }
    }
}

const LCG_A: i64 = 0x5851_F42D_4C95_7F2Du64 as i64;
const LCG_C: i64 = 0x1405_7B7E_F767_814Fu64 as i64;

/// A built EP workload.
pub struct Ep {
    params: EpParams,
    image: CodeImage,
    entry: CodeAddr,
    out: u64,
}

impl Ep {
    pub fn build(params: EpParams, _policy: &PrefetchPolicy, mem_bytes: usize) -> Self {
        // EP is compute-bound: icc finds almost nothing to prefetch, so the
        // policy is irrelevant — matching Table 1's near-zero counts.
        let mut arena = Arena::new(mem_bytes);
        let out = arena.alloc_bytes(128 * 16);

        let mut a = Assembler::new();
        let entry = a.symbol("ep_body");
        // args: r12=out, r13=A, r14=C, r15=2^-30 bits, r16=0.5 bits, r17=seed
        a.emit(Insn::new(Op::SetfD {
            dest: 7,
            src: abi::R_ARG0 + 3,
        })); // 2^-30
        a.emit(Insn::new(Op::SetfD {
            dest: 8,
            src: abi::R_ARG0 + 4,
        })); // 0.5
        a.emit(Insn::new(Op::FmulD {
            dest: 6,
            f1: 8,
            f2: 8,
        })); // 0.25
             // state = seed + (tid+1) * GOLD (distinct per-thread streams)
        a.movi(2, 0x9E37_79B9);
        a.addi(3, abi::R_TID, 1);
        a.emit(Insn::new(Op::Mul {
            dest: 2,
            r2: 2,
            r3: 3,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 2,
            r2: 2,
            r3: abi::R_ARG0 + 5,
        }));
        // count (r19) = 0; trip count r20 = hi - lo
        a.movi(19, 0);
        a.emit(Insn::new(Op::Sub {
            dest: 20,
            r2: abi::R_HI,
            r3: abi::R_LO,
        }));
        let done = a.new_label();
        a.emit(Insn::new(Op::CmpI {
            p1: 6,
            p2: 7,
            rel: CmpRel::Ge,
            imm: 0,
            r3: 20,
        }));
        a.br_cond(6, done);
        a.addi(20, 20, -1);
        a.mov_to_lc(20);
        let top = a.new_label();
        a.bind(top);
        // x draw
        a.emit(Insn::new(Op::Mul {
            dest: 2,
            r2: 2,
            r3: abi::R_ARG0 + 1,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 2,
            r2: 2,
            r3: abi::R_ARG0 + 2,
        }));
        a.emit(Insn::new(Op::ShrI {
            dest: 4,
            src: 2,
            count: 34,
        }));
        a.emit(Insn::new(Op::SetfSig { dest: 10, src: 4 }));
        a.emit(Insn::new(Op::FcvtXf { dest: 10, src: 10 }));
        a.emit(Insn::new(Op::FmulD {
            dest: 10,
            f1: 10,
            f2: 7,
        })); // x in [0,1)
             // y draw
        a.emit(Insn::new(Op::Mul {
            dest: 2,
            r2: 2,
            r3: abi::R_ARG0 + 1,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 2,
            r2: 2,
            r3: abi::R_ARG0 + 2,
        }));
        a.emit(Insn::new(Op::ShrI {
            dest: 4,
            src: 2,
            count: 34,
        }));
        a.emit(Insn::new(Op::SetfSig { dest: 11, src: 4 }));
        a.emit(Insn::new(Op::FcvtXf { dest: 11, src: 11 }));
        a.emit(Insn::new(Op::FmulD {
            dest: 11,
            f1: 11,
            f2: 7,
        }));
        // d = (x-1/2)^2 + (y-1/2)^2
        a.emit(Insn::new(Op::FsubD {
            dest: 12,
            f1: 10,
            f2: 8,
        }));
        a.emit(Insn::new(Op::FsubD {
            dest: 13,
            f1: 11,
            f2: 8,
        }));
        a.emit(Insn::new(Op::FmaD {
            dest: 14,
            f1: 12,
            f2: 12,
            f3: 0,
        }));
        a.emit(Insn::new(Op::FmaD {
            dest: 14,
            f1: 13,
            f2: 13,
            f3: 14,
        }));
        a.emit(Insn::new(Op::FcmpD {
            p1: 8,
            p2: 9,
            rel: CmpRel::Le,
            f1: 14,
            f2: 6,
        }));
        a.emit(Insn::pred(
            8,
            Op::AddI {
                dest: 19,
                src: 19,
                imm: 1,
            },
        ));
        a.br_cloop(top);
        a.bind(done);
        // out[tid] (one line apart) = count
        a.emit(Insn::new(Op::ShlI {
            dest: 5,
            src: abi::R_TID,
            count: 7,
        }));
        a.emit(Insn::new(Op::Add {
            dest: 5,
            r2: 5,
            r3: abi::R_ARG0,
        }));
        a.st8(0, 19, 5, 0);
        a.hlt();
        let image = a.finish();
        Ep {
            params,
            image,
            entry,
            out,
        }
    }

    /// Host mirror of one thread's chunk.
    fn host_count(seed: i64, pairs: usize) -> i64 {
        let inv: f64 = (1.0f64) / (1u64 << 30) as f64;
        let mut state = seed;
        let mut count = 0i64;
        for _ in 0..pairs {
            state = state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
            let x = ((state as u64) >> 34) as f64 * inv;
            state = state.wrapping_mul(LCG_A).wrapping_add(LCG_C);
            let y = ((state as u64) >> 34) as f64 * inv;
            let dx = x - 0.5;
            let dy = y - 0.5;
            let d = dy.mul_add(dy, dx.mul_add(dx, 0.0));
            if d <= 0.25 {
                count += 1;
            }
        }
        count
    }
}

const SEED_BASE: i64 = 20070612;

impl Workload for Ep {
    fn name(&self) -> &'static str {
        "ep"
    }

    fn image(&self) -> &CodeImage {
        &self.image
    }

    fn init(&self, mem: &mut DataMem) {
        for t in 0..16 {
            mem.write_u64(self.out + 128 * t, 0);
        }
    }

    fn run(
        &self,
        machine: &mut Machine,
        team: Team,
        rt: &OmpRuntime,
        hook: &mut dyn QuantumHook,
    ) -> WorkloadRun {
        let start = machine.cycle();
        let inv: f64 = 1.0 / (1u64 << 30) as f64;
        let args = [
            self.out as i64,
            LCG_A,
            LCG_C,
            inv.to_bits() as i64,
            0.5f64.to_bits() as i64,
            SEED_BASE,
        ];
        rt.parallel_for(
            machine,
            team,
            self.entry,
            0,
            self.params.pairs as i64,
            &args,
            hook,
        );
        // Remember the team so verify can mirror the chunking.
        machine
            .shared
            .mem
            .write_u64(self.out + 128 * 15 + 8, team.num_threads as u64);
        WorkloadRun {
            cycles: machine.cycle() - start,
        }
    }

    fn verify(&self, mem: &DataMem) -> Result<(), String> {
        let nthreads = mem.read_u64(self.out + 128 * 15 + 8) as usize;
        if nthreads == 0 || nthreads > 15 {
            return Err(format!("bad recorded team size {nthreads}"));
        }
        let team = Team::new(nthreads);
        for (tid, (lo, hi)) in team
            .static_chunks(0, self.params.pairs as i64)
            .into_iter()
            .enumerate()
        {
            let seed = 0x9E37_79B9i64 * (tid as i64 + 1) + SEED_BASE;
            let want = Self::host_count(seed, (hi - lo) as usize);
            let got = mem.read_u64(self.out + 128 * tid as u64) as i64;
            if got != want {
                return Err(format!("tid {tid}: count {got}, expected {want}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::execute_plain;
    use cobra_machine::{Event, MachineConfig};

    #[test]
    fn ep_counts_match_host_lcg_mirror() {
        let cfg = MachineConfig::smp4();
        for threads in [1, 2, 4] {
            let ep = Ep::build(
                EpParams { pairs: 4000 },
                &PrefetchPolicy::aggressive(),
                cfg.mem_bytes,
            );
            execute_plain(&ep, &cfg, Team::new(threads));
        }
    }

    #[test]
    fn ep_tallies_are_plausibly_pi() {
        let cfg = MachineConfig::smp4();
        let ep = Ep::build(
            EpParams { pairs: 20_000 },
            &PrefetchPolicy::aggressive(),
            cfg.mem_bytes,
        );
        let (m, _) = execute_plain(&ep, &cfg, Team::new(4));
        let total: i64 = (0..4)
            .map(|t| m.shared.mem.read_u64(ep.out + 128 * t) as i64)
            .sum();
        let pi = 4.0 * total as f64 / 20_000.0;
        assert!((pi - std::f64::consts::PI).abs() < 0.1, "pi estimate {pi}");
    }

    #[test]
    fn ep_has_near_zero_prefetch_and_coherence() {
        let cfg = MachineConfig::smp4();
        let ep = Ep::build(
            EpParams { pairs: 8_000 },
            &PrefetchPolicy::aggressive(),
            cfg.mem_bytes,
        );
        assert_eq!(
            ep.image().count_matching(|i| i.is_lfetch()),
            0,
            "Table 1: EP has no stream loops"
        );
        let (m, _) = execute_plain(&ep, &cfg, Team::new(4));
        let total = m.total_stats();
        // A handful of events from the result-line writes at most.
        assert!(
            total.get(Event::BusRdHitm) < 20,
            "EP must show no meaningful coherent misses"
        );
    }
}
