//! `minicc` — the icc-like loop code generator.
//!
//! The Intel icc 9.1 compiler the paper uses emits software-pipelined loops
//! with very aggressive data prefetching: a burst of `lfetch.nt1` before the
//! loop for the first cache lines of the stored array, plus per-iteration
//! `lfetch.nt1` about nine 128-byte lines ahead of the current references
//! (Figure 2). `minicc` regenerates that code shape for our ISA:
//!
//! * [`emit_stream_loop`] — a modulo-scheduled (rotating-register) loop over
//!   unit- or power-of-two-strided `f64` streams, supporting the operation
//!   repertoire the DAXPY and NPB-like kernels need ([`StreamOp`]).
//! * [`emit_prefetch_burst`] — the pre-loop prefetch burst.
//! * [`PrefetchPolicy`] — the -O3 aggressiveness knobs; variants of whole
//!   binaries (prefetch / noprefetch / blanket-`.excl`) are produced by
//!   changing the policy, exactly the three strategies §5.2 compares.
//!
//! Register conventions inside a region body (all non-rotating):
//! scratch pointers `r2`–`r7`, trip counts `r20`–`r23`, prefetch pointers
//! `r27`–`r30`, burst scratch `r31`, barrier registers `r24`–`r26`
//! (see `cobra_omp::BarrierRegs`), coefficients in `f6`–`f8`, reduction
//! accumulators `f9`–`f10`, predicates `p6`/`p7` for range checks and `p15`
//! as a comparison sink. Rotating regions (`r32+`, `f32+`, `p16+`) belong to
//! the pipelined loops.

use cobra_isa::insn::{CmpRel, Insn, LfetchHint, Op};
use cobra_isa::{Assembler, CodeAddr};
use serde::{Deserialize, Serialize};

/// Prefetch aggressiveness of generated binaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchPolicy {
    /// Emit prefetches at all. `false` produces the *noprefetch* static
    /// variant (what Fig. 3(a) compares against).
    pub enabled: bool,
    /// Prefetch distance in bytes ahead of the current reference.
    /// icc's DAXPY uses 1200 bytes ≈ 9 lines (Fig. 2).
    pub distance_bytes: i64,
    /// Pre-loop burst length in cache lines (Fig. 2 shows 6).
    pub burst_lines: u32,
    /// Emit every prefetch with the `.excl` ownership hint (the blanket
    /// *prefetch.excl* static variant of Fig. 3(b)).
    pub excl: bool,
}

impl PrefetchPolicy {
    /// The baseline: aggressive prefetching as icc -O3 generates it.
    pub fn aggressive() -> Self {
        PrefetchPolicy {
            enabled: true,
            distance_bytes: 1200,
            burst_lines: 6,
            excl: false,
        }
    }

    /// Static noprefetch variant: identical schedule to [`Self::aggressive`]
    /// with every `lfetch` replaced by `nop.m` (§2's modified binaries).
    pub fn none() -> Self {
        PrefetchPolicy {
            enabled: false,
            ..Self::aggressive()
        }
    }

    /// Static blanket-`.excl` variant.
    pub fn aggressive_excl() -> Self {
        PrefetchPolicy {
            excl: true,
            ..Self::aggressive()
        }
    }

    fn hint(&self) -> LfetchHint {
        LfetchHint::Nt1
    }
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        Self::aggressive()
    }
}

/// One data stream of a pipelined loop.
#[derive(Debug, Clone, Copy)]
pub struct Stream {
    /// Register holding the current element pointer (pre-set by the caller;
    /// advanced by post-increment).
    pub ptr: u8,
    /// Byte stride per loop iteration (8 for unit-stride `f64`).
    pub stride: i32,
}

/// Operation computed per element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// `y[i] = x1[i]`
    Copy,
    /// `y[i] = a * x1[i]`
    Scale,
    /// `y[i] = x2[i] + a * x1[i]` where `x2` and `y` walk the same array —
    /// the DAXPY of Figure 1 (`x2` is the load pointer, `y` the store
    /// pointer of the updated array).
    Daxpy,
    /// `y[i] = x2[i] + a * x1[i]` over three distinct arrays.
    Triad,
    /// `acc += x1[i] * x2[i]` (reduction into a non-rotating FR).
    Dot,
}

/// Full specification of one pipelined stream loop.
#[derive(Debug, Clone)]
pub struct StreamLoopSpec {
    pub op: StreamOp,
    /// Primary load stream.
    pub x1: Stream,
    /// Secondary load stream (`Daxpy`/`Triad`/`Dot`).
    pub x2: Option<Stream>,
    /// Store stream (absent for `Dot`).
    pub y: Option<Stream>,
    /// Register holding the trip count (consumed).
    pub n: u8,
    /// FR holding the scalar coefficient `a` (e.g. `f6`).
    pub coef: u8,
    /// FR accumulating the `Dot` reduction (e.g. `f9`).
    pub acc: u8,
    /// Streams to prefetch ahead of (each with its *own* pointer register,
    /// pre-set by the caller to `stream_start + policy.distance_bytes`).
    pub prefetch: Vec<Stream>,
    /// Pointer registers whose first lines get the pre-loop burst
    /// (icc bursts the stored array, Fig. 2). Registers are not clobbered.
    pub burst: Vec<u8>,
}

/// Where the interesting instructions of a generated loop live (used by
/// tests and the Figure 2 reproduction; COBRA itself discovers loops from
/// BTB profiles, never from this metadata).
#[derive(Debug, Clone, Default)]
pub struct LoopMeta {
    /// First address of the kernel loop body.
    pub head: CodeAddr,
    /// Address of the `br.ctop` back edge.
    pub back_edge: CodeAddr,
    /// Addresses of every emitted `lfetch` (burst + in-loop).
    pub lfetch_addrs: Vec<CodeAddr>,
}

/// Scratch register used by burst emission.
const R_BURST: u8 = 31;
/// Comparison sink predicate (static region, scribble-safe).
const P_SINK: u8 = 15;

/// Emit the pre-loop prefetch burst: `burst_lines` consecutive lines
/// starting at the pointer in `ptr` (cf. the six `lfetch.nt1` before
/// `.b1_22` in Figure 2). `ptr` itself is preserved.
pub fn emit_prefetch_burst(
    a: &mut Assembler,
    policy: &PrefetchPolicy,
    ptr: u8,
    meta: &mut LoopMeta,
) {
    if policy.burst_lines == 0 {
        return;
    }
    // The noprefetch variant replaces each lfetch with a NOP — "the lfetch
    // instructions are changed to NOP instructions" (§2) — so every variant
    // has an identical schedule and instruction count, isolating the
    // coherence effect.
    if !policy.enabled {
        for _ in 0..=policy.burst_lines {
            a.nop(cobra_isa::Unit::M);
        }
        return;
    }
    a.mov(R_BURST, ptr);
    for k in 0..policy.burst_lines {
        a.comment(format!("prefetch line +{}", k * 128));
        let addr = a.emit(Insn::new(Op::Lfetch {
            base: R_BURST,
            post_inc: 128,
            hint: policy.hint(),
            excl: policy.excl,
        }));
        meta.lfetch_addrs.push(addr);
    }
}

/// Stage at which the compute (or `Copy` store, or `Dot` reduce) happens.
const COMPUTE_STAGE: u8 = 5;
/// Stage at which results are stored (`Scale`/`Daxpy`/`Triad`).
const STORE_STAGE: u8 = 7;

/// Rotating FR chain bases (mirroring Figure 2's `f32`/`f38`/`f44`).
const CHAIN_X1: u8 = 32;
const CHAIN_X2: u8 = 38;
const CHAIN_RES: u8 = 44;

/// Emit a software-pipelined stream loop per `spec`.
///
/// The caller must have set all stream pointer registers and the trip-count
/// register. The loop is skipped entirely when the trip count is `<= 0`.
/// Register rotation carries loaded values from the load stage to the
/// compute stage and results to the store stage; the stage predicates
/// (`p16`, `p21`, `p23`) match the icc schedule of Figure 2.
pub fn emit_stream_loop(
    a: &mut Assembler,
    policy: &PrefetchPolicy,
    spec: &StreamLoopSpec,
) -> LoopMeta {
    let mut meta = LoopMeta::default();
    spec.validate();

    let skip = a.new_label();
    // if (n <= 0) goto skip;
    a.emit(Insn::new(Op::CmpI {
        p1: 6,
        p2: 7,
        rel: CmpRel::Ge,
        imm: 0,
        r3: spec.n,
    }));
    a.br_cond(6, skip);

    for &ptr in &spec.burst {
        emit_prefetch_burst(a, policy, ptr, &mut meta);
    }

    // LC = n - 1; EC = pipeline depth.
    let ec = match spec.op {
        StreamOp::Copy | StreamOp::Dot => COMPUTE_STAGE + 1,
        StreamOp::Scale | StreamOp::Daxpy | StreamOp::Triad => STORE_STAGE + 1,
    };
    a.emit(Insn::new(Op::Clrrrb));
    a.addi(spec.n, spec.n, -1);
    a.mov_to_lc(spec.n);
    a.movi(R_BURST, ec as i64);
    a.mov_to_ec(R_BURST);
    // Prime the stage predicates: p16 = 1, p17..p(15+ec) = 0.
    a.cmp(16, 17, CmpRel::Eq, 0, 0);
    for stage in 2..ec {
        a.emit(Insn::new(Op::Cmp {
            p1: 16 + stage,
            p2: P_SINK,
            rel: CmpRel::Ne,
            r2: 0,
            r3: 0,
        }));
    }

    let top = a.new_label();
    a.bind(top);
    meta.head = a.here();

    // ---- load stage (p16) ----
    a.comment("load x1[i]");
    a.ldfd(16, CHAIN_X1, spec.x1.ptr, spec.x1.stride);
    if let Some(x2) = spec.x2 {
        a.comment("load x2[i]");
        a.ldfd(16, CHAIN_X2, x2.ptr, x2.stride);
    }
    if policy.enabled {
        for pf in &spec.prefetch {
            a.comment(format!("prefetch +{} bytes ahead", policy.distance_bytes));
            let addr = a.emit(Insn::pred(
                16,
                Op::Lfetch {
                    base: pf.ptr,
                    post_inc: pf.stride,
                    hint: policy.hint(),
                    excl: policy.excl,
                },
            ));
            meta.lfetch_addrs.push(addr);
        }
    } else {
        // NOP-for-lfetch substitution: keep the schedule identical (§2).
        for _ in &spec.prefetch {
            a.nop(cobra_isa::Unit::M);
        }
    }

    // ---- compute stage ----
    let cp = 16 + COMPUTE_STAGE; // p21
    let x1_c = CHAIN_X1 + COMPUTE_STAGE; // f37
    let x2_c = CHAIN_X2 + COMPUTE_STAGE; // f43
    match spec.op {
        StreamOp::Copy => {
            let y = spec.y.expect("validated");
            a.comment("store y[i] = x1[i]");
            a.stfd(cp, x1_c, y.ptr, y.stride);
        }
        StreamOp::Scale => {
            a.comment("y[i] = a*x1[i]");
            a.fma_d(cp, CHAIN_RES, spec.coef, x1_c, 0);
        }
        StreamOp::Daxpy | StreamOp::Triad => {
            a.comment("x2[i] + a*x1[i]");
            a.fma_d(cp, CHAIN_RES, spec.coef, x1_c, x2_c);
        }
        StreamOp::Dot => {
            a.comment("acc += x1[i]*x2[i]");
            a.emit(Insn::pred(
                cp,
                Op::FmaD {
                    dest: spec.acc,
                    f1: x1_c,
                    f2: x2_c,
                    f3: spec.acc,
                },
            ));
        }
    }

    // ---- store stage ----
    if !matches!(spec.op, StreamOp::Copy | StreamOp::Dot) {
        let sp = 16 + STORE_STAGE; // p23
        let res_s = CHAIN_RES + (STORE_STAGE - COMPUTE_STAGE); // f46
        let y = spec.y.expect("validated");
        a.comment("store y[i]");
        a.stfd(sp, res_s, y.ptr, y.stride);
    }

    meta.back_edge = a.br_ctop(top);
    a.bind(skip);
    meta
}

impl StreamLoopSpec {
    fn validate(&self) {
        match self.op {
            StreamOp::Copy | StreamOp::Scale => {
                assert!(self.y.is_some(), "{:?} needs a store stream", self.op);
                assert!(self.x2.is_none(), "{:?} takes one load stream", self.op);
            }
            StreamOp::Daxpy | StreamOp::Triad => {
                assert!(self.y.is_some() && self.x2.is_some());
            }
            StreamOp::Dot => {
                assert!(self.x2.is_some() && self.y.is_none());
            }
        }
        for s in [Some(self.x1), self.x2].into_iter().flatten() {
            assert!(s.ptr < 32, "stream pointers must be non-rotating");
        }
        for pf in &self.prefetch {
            assert!(pf.ptr < 32, "prefetch pointers must be non-rotating");
        }
    }
}

/// Emit pointer setup: `dest = base + ((lo_reg + offset_elems) << shift)`.
/// `base` is a register holding an array base address; `shift` is
/// log2(element size in bytes) times the per-index stride.
pub fn emit_ptr(a: &mut Assembler, dest: u8, base: u8, lo_reg: u8, offset_elems: i32, shift: u8) {
    a.addi(dest, lo_reg, offset_elems);
    a.emit(Insn::new(Op::ShlI {
        dest,
        src: dest,
        count: shift,
    }));
    a.emit(Insn::new(Op::Add {
        dest,
        r2: dest,
        r3: base,
    }));
}

/// Emit trip-count setup: `dest = hi_reg - lo_reg`.
pub fn emit_trip_count(a: &mut Assembler, dest: u8, lo_reg: u8, hi_reg: u8) {
    a.emit(Insn::new(Op::Sub {
        dest,
        r2: hi_reg,
        r3: lo_reg,
    }));
}

/// Emit `dest_fr = f64::from_bits(bits_reg)` — how scalar coefficients
/// arrive in region bodies (passed as raw bits in integer argument
/// registers).
pub fn emit_coef(a: &mut Assembler, dest_fr: u8, bits_reg: u8) {
    a.emit(Insn::new(Op::SetfD {
        dest: dest_fr,
        src: bits_reg,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_machine::{Machine, MachineConfig};
    use cobra_omp::{abi, NullHook, OmpRuntime, Team};

    const X: i64 = 0x10000;
    const Y: i64 = 0x20000;
    const Z: i64 = 0x30000;
    const OUT: i64 = 0x40000;

    /// Build a region body running `op` over the chunk, with arrays
    /// x (r12), y (r13), z (r14), coef bits (r15), partial-out (r16).
    fn body(op: StreamOp, policy: &PrefetchPolicy) -> (cobra_isa::CodeImage, LoopMeta) {
        let mut a = Assembler::new();
        a.symbol("body");
        emit_coef(&mut a, 6, 15);
        // pointers
        emit_ptr(&mut a, 2, abi::R_ARG0, abi::R_LO, 0, 3); // x1 = x
        emit_ptr(&mut a, 3, abi::R_ARG0 + 1, abi::R_LO, 0, 3); // y load
        emit_ptr(&mut a, 4, abi::R_ARG0 + 1, abi::R_LO, 0, 3); // y store
        emit_ptr(&mut a, 5, abi::R_ARG0 + 2, abi::R_LO, 0, 3); // z
        emit_trip_count(&mut a, 20, abi::R_LO, abi::R_HI);
        // prefetch pointers at distance
        a.addi(27, 2, 1200);
        a.addi(28, 4, 1200);
        // zero the accumulator
        a.emit(Insn::new(Op::FmaD {
            dest: 9,
            f1: 0,
            f2: 0,
            f3: 0,
        }));
        let spec = match op {
            StreamOp::Copy => StreamLoopSpec {
                op,
                x1: Stream { ptr: 2, stride: 8 },
                x2: None,
                y: Some(Stream { ptr: 4, stride: 8 }),
                n: 20,
                coef: 6,
                acc: 9,
                prefetch: vec![Stream { ptr: 27, stride: 8 }, Stream { ptr: 28, stride: 8 }],
                burst: vec![4],
            },
            StreamOp::Scale => StreamLoopSpec {
                op,
                x1: Stream { ptr: 2, stride: 8 },
                x2: None,
                y: Some(Stream { ptr: 4, stride: 8 }),
                n: 20,
                coef: 6,
                acc: 9,
                prefetch: vec![Stream { ptr: 27, stride: 8 }],
                burst: vec![4],
            },
            StreamOp::Daxpy => StreamLoopSpec {
                op,
                x1: Stream { ptr: 2, stride: 8 },
                x2: Some(Stream { ptr: 3, stride: 8 }),
                y: Some(Stream { ptr: 4, stride: 8 }),
                n: 20,
                coef: 6,
                acc: 9,
                prefetch: vec![Stream { ptr: 27, stride: 8 }, Stream { ptr: 28, stride: 8 }],
                burst: vec![4],
            },
            StreamOp::Triad => StreamLoopSpec {
                op,
                x1: Stream { ptr: 2, stride: 8 },
                x2: Some(Stream { ptr: 5, stride: 8 }),
                y: Some(Stream { ptr: 4, stride: 8 }),
                n: 20,
                coef: 6,
                acc: 9,
                prefetch: vec![Stream { ptr: 27, stride: 8 }],
                burst: vec![4],
            },
            StreamOp::Dot => StreamLoopSpec {
                op,
                x1: Stream { ptr: 2, stride: 8 },
                x2: Some(Stream { ptr: 3, stride: 8 }),
                y: None,
                n: 20,
                coef: 6,
                acc: 9,
                prefetch: vec![Stream { ptr: 27, stride: 8 }],
                burst: vec![],
            },
        };
        let meta = emit_stream_loop(&mut a, policy, &spec);
        // Dot: out[tid] = acc
        if op == StreamOp::Dot {
            emit_ptr(&mut a, 7, abi::R_ARG0 + 4, abi::R_TID, 0, 3);
            a.stfd(0, 9, 7, 0);
        }
        a.hlt();
        (a.finish(), meta)
    }

    fn run(
        op: StreamOp,
        policy: &PrefetchPolicy,
        n: usize,
        threads: usize,
        coef: f64,
    ) -> (Machine, Vec<f64>, Vec<f64>, Vec<f64>) {
        let (image, _) = body(op, policy);
        let mut m = Machine::new(MachineConfig::smp4(), image);
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 + 0.5).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 2.0).collect();
        let z: Vec<f64> = (0..n).map(|i| (i % 5) as f64 * 0.25).collect();
        m.shared.mem.write_f64_slice(X as u64, &x);
        m.shared.mem.write_f64_slice(Y as u64, &y);
        m.shared.mem.write_f64_slice(Z as u64, &z);
        let rt = OmpRuntime::default();
        rt.parallel_for(
            &mut m,
            Team::new(threads),
            0,
            0,
            n as i64,
            &[X, Y, Z, coef.to_bits() as i64, OUT],
            &mut NullHook,
        );
        (m, x, y, z)
    }

    #[test]
    fn daxpy_computes_correctly_across_threads() {
        for threads in [1, 2, 4] {
            let (m, x, y, _) = run(
                StreamOp::Daxpy,
                &PrefetchPolicy::aggressive(),
                333,
                threads,
                3.0,
            );
            for i in 0..333 {
                let want = y[i] + 3.0 * x[i];
                let got = m.shared.mem.read_f64((Y + 8 * i as i64) as u64);
                assert_eq!(got, want, "i={i} threads={threads}");
            }
        }
    }

    #[test]
    fn daxpy_results_identical_under_all_policies() {
        // The paper's premise: prefetch variants never change semantics.
        for policy in [
            PrefetchPolicy::aggressive(),
            PrefetchPolicy::none(),
            PrefetchPolicy::aggressive_excl(),
        ] {
            let (m, x, y, _) = run(StreamOp::Daxpy, &policy, 200, 4, -1.5);
            for i in 0..200 {
                let want = y[i] - 1.5 * x[i];
                assert_eq!(m.shared.mem.read_f64((Y + 8 * i as i64) as u64), want);
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // i addresses memory and indexes x
    fn copy_scale_triad_semantics() {
        let (m, x, ..) = run(StreamOp::Copy, &PrefetchPolicy::aggressive(), 100, 2, 0.0);
        for i in 0..100 {
            assert_eq!(m.shared.mem.read_f64((Y + 8 * i as i64) as u64), x[i]);
        }
        let (m, x, ..) = run(StreamOp::Scale, &PrefetchPolicy::aggressive(), 100, 3, 2.5);
        for i in 0..100 {
            assert_eq!(m.shared.mem.read_f64((Y + 8 * i as i64) as u64), 2.5 * x[i]);
        }
        let (m, x, _, z) = run(StreamOp::Triad, &PrefetchPolicy::aggressive(), 100, 4, 4.0);
        for i in 0..100 {
            assert_eq!(
                m.shared.mem.read_f64((Y + 8 * i as i64) as u64),
                z[i] + 4.0 * x[i]
            );
        }
    }

    #[test]
    fn dot_partials_sum_to_inner_product() {
        let n = 257;
        let (m, x, y, _) = run(StreamOp::Dot, &PrefetchPolicy::aggressive(), n, 4, 0.0);
        let partials = m.shared.mem.read_f64_slice(OUT as u64, 4);
        let got: f64 = partials.iter().sum();
        // Mirror the chunked summation order for exactness.
        let team = Team::new(4);
        let want: f64 = team
            .static_chunks(0, n as i64)
            .iter()
            .map(|&(lo, hi)| (lo..hi).map(|i| x[i as usize] * y[i as usize]).sum::<f64>())
            .sum();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn empty_chunks_are_skipped() {
        // 2 elements across 4 threads: threads 2,3 run zero iterations.
        let (m, x, y, _) = run(StreamOp::Daxpy, &PrefetchPolicy::aggressive(), 2, 4, 1.0);
        for i in 0..2 {
            assert_eq!(
                m.shared.mem.read_f64((Y + 8 * i as i64) as u64),
                y[i] + x[i]
            );
        }
    }

    #[test]
    fn noprefetch_policy_emits_zero_lfetch() {
        let (image, meta) = body(StreamOp::Daxpy, &PrefetchPolicy::none());
        assert!(meta.lfetch_addrs.is_empty());
        assert_eq!(image.count_matching(|i| i.is_lfetch()), 0);
    }

    #[test]
    fn aggressive_policy_emits_burst_plus_loop_prefetches() {
        let (image, meta) = body(StreamOp::Daxpy, &PrefetchPolicy::aggressive());
        // 6 burst + 2 in-loop.
        assert_eq!(meta.lfetch_addrs.len(), 8);
        assert_eq!(image.count_matching(|i| i.is_lfetch()), 8);
        // All are .nt1 without .excl.
        for &addr in &meta.lfetch_addrs {
            match image.insn(addr).unwrap().op {
                Op::Lfetch { hint, excl, .. } => {
                    assert_eq!(hint, LfetchHint::Nt1);
                    assert!(!excl);
                }
                other => panic!("not an lfetch at {addr}: {other:?}"),
            }
        }
    }

    #[test]
    fn excl_policy_marks_every_prefetch() {
        let (image, meta) = body(StreamOp::Daxpy, &PrefetchPolicy::aggressive_excl());
        for &addr in &meta.lfetch_addrs {
            match image.insn(addr).unwrap().op {
                Op::Lfetch { excl, .. } => assert!(excl),
                other => panic!("not an lfetch: {other:?}"),
            }
        }
    }

    #[test]
    fn loops_use_ctop_back_edges() {
        let (image, meta) = body(StreamOp::Daxpy, &PrefetchPolicy::aggressive());
        match image.insn(meta.back_edge).unwrap().op {
            Op::BrCtop { target } => assert_eq!(target, meta.head),
            other => panic!("back edge is {other:?}"),
        }
    }

    #[test]
    fn prefetching_reduces_cycles_on_cold_single_thread_streams() {
        // 2 MB working set, one thread: the regime where prefetching is pure
        // win (Fig. 3a rightmost group).
        let n = 65_536; // 512 KB per array
        let cycles = |policy: PrefetchPolicy| {
            let (image, _) = body(StreamOp::Daxpy, &policy);
            let mut m = Machine::new(MachineConfig::smp4(), image);
            m.shared.mem.write_f64_slice(X as u64, &vec![1.0; n]);
            m.shared.mem.write_f64_slice(Y as u64, &vec![2.0; n]);
            let rt = OmpRuntime::default();
            let s = rt.parallel_for(
                &mut m,
                Team::new(1),
                0,
                0,
                n as i64,
                &[X, Y, Z, 1.0f64.to_bits() as i64, OUT],
                &mut NullHook,
            );
            s.cycles
        };
        let with = cycles(PrefetchPolicy::aggressive());
        let without = cycles(PrefetchPolicy::none());
        assert!(
            (without as f64) > (with as f64) * 1.3,
            "prefetch must help cold streams: with={with} without={without}"
        );
    }
}
