//! Class-S-scaled kernels with the memory-access skeletons of the NAS
//! Parallel Benchmarks (the paper's evaluation suite, §5.1).
//!
//! These are *skeletons*, not ports: each reproduces the loop-parallel
//! memory behaviour that drives the paper's experiments — blocked OpenMP
//! partitions whose aggressive prefetch streams cross partition boundaries
//! — at class-S scale, where "60–70 % of memory accesses … are related to
//! coherent memory accesses". The simulated CFD codes (BT, SP, LU) and the
//! grid kernels (FT, MG) are sequences of software-pipelined stream passes
//! over shared grids; CG is a real CSR conjugate-gradient solver; EP and IS
//! are the compute-bound / integer kernels that show no long-latency
//! coherent misses and are excluded from Figures 5–7, as in the paper.
//! DESIGN.md documents the substitution in detail.

mod cgk;
mod epk;
mod isk;
mod sweep;
mod sweeps;

pub use cgk::{Cg, CgParams};
pub use epk::{Ep, EpParams};
pub use isk::{Is, IsParams};
pub use sweep::{ArrayDecl, PassSpec, SweepKernel};

use crate::workload::Workload;

/// The NPB benchmarks the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    Bt,
    Sp,
    Lu,
    Ft,
    Mg,
    Cg,
    Ep,
    Is,
}

impl Benchmark {
    /// All benchmarks, in the paper's Table 1 order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Bt,
        Benchmark::Sp,
        Benchmark::Lu,
        Benchmark::Ft,
        Benchmark::Mg,
        Benchmark::Cg,
        Benchmark::Ep,
        Benchmark::Is,
    ];

    /// The six benchmarks of Figures 5–7 (EP and IS show no long-latency
    /// coherent misses and are excluded, §5.2).
    pub const COHERENT: [Benchmark; 6] = [
        Benchmark::Bt,
        Benchmark::Sp,
        Benchmark::Lu,
        Benchmark::Ft,
        Benchmark::Mg,
        Benchmark::Cg,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Bt => "bt",
            Benchmark::Sp => "sp",
            Benchmark::Lu => "lu",
            Benchmark::Ft => "ft",
            Benchmark::Mg => "mg",
            Benchmark::Cg => "cg",
            Benchmark::Ep => "ep",
            Benchmark::Is => "is",
        }
    }
}

/// Build a benchmark at class-S-like scale under a prefetch policy.
/// `mem_bytes` bounds the data layout (pass the machine config's memory).
pub fn build(
    bench: Benchmark,
    policy: &crate::minicc::PrefetchPolicy,
    mem_bytes: usize,
) -> Box<dyn Workload> {
    match bench {
        Benchmark::Bt => Box::new(sweeps::bt(policy, mem_bytes)),
        Benchmark::Sp => Box::new(sweeps::sp(policy, mem_bytes)),
        Benchmark::Lu => Box::new(sweeps::lu(policy, mem_bytes)),
        Benchmark::Ft => Box::new(sweeps::ft(policy, mem_bytes)),
        Benchmark::Mg => Box::new(sweeps::mg(policy, mem_bytes)),
        Benchmark::Cg => Box::new(Cg::build(CgParams::class_s(), policy, mem_bytes)),
        Benchmark::Ep => Box::new(Ep::build(EpParams::class_s(), policy, mem_bytes)),
        Benchmark::Is => Box::new(Is::build(IsParams::class_s(), policy, mem_bytes)),
    }
}
