//! # cobra-kernels — workloads compiled by the icc-like `minicc` generator
//!
//! Provides the programs COBRA optimizes:
//!
//! * [`minicc`] — the code generator reproducing icc -O3's software-pipelined
//!   loops with aggressive prefetching (the Figure 2 code shape).
//! * [`daxpy`] — the OpenMP DAXPY kernel of Figures 1–3.
//! * [`npb`] — class-S-scaled kernels with the memory-access skeletons of the
//!   NAS Parallel Benchmarks (BT, SP, LU, FT, MG, CG, EP, IS).
//! * [`workload`] — the common `Workload` trait: build image, initialize
//!   data, run under the OpenMP runtime, verify numerics.

pub mod daxpy;
pub mod minicc;
pub mod npb;
pub mod workload;

pub use daxpy::{Daxpy, DaxpyParams};
pub use minicc::{
    emit_coef, emit_prefetch_burst, emit_ptr, emit_stream_loop, emit_trip_count, LoopMeta,
    PrefetchPolicy, Stream, StreamLoopSpec, StreamOp,
};
pub use workload::{Arena, Workload, WorkloadRun};
