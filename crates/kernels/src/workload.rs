//! The common workload interface the harness and COBRA tests drive.

use cobra_isa::CodeImage;
use cobra_machine::{DataMem, Machine, MachineConfig};
use cobra_omp::{NullHook, OmpRuntime, QuantumHook, Team};

/// A simple bump allocator for laying out workload data in the flat data
/// memory. Allocations are aligned to the 128-byte coherence line so that
/// arrays never share lines by accident (the sharing we study must come
/// from the access pattern, not the layout).
#[derive(Debug, Clone)]
pub struct Arena {
    next: u64,
    limit: u64,
}

impl Arena {
    /// Data space starts above the low region reserved for barrier counters
    /// and per-thread scratch slots.
    pub const DATA_BASE: u64 = 0x1_0000;

    pub fn new(mem_bytes: usize) -> Self {
        Arena {
            next: Self::DATA_BASE,
            limit: mem_bytes as u64,
        }
    }

    /// Allocate `n` f64 elements; returns the byte address.
    pub fn alloc_f64(&mut self, n: usize) -> u64 {
        self.alloc_bytes(8 * n as u64)
    }

    /// Allocate `n` i64 elements; returns the byte address.
    pub fn alloc_i64(&mut self, n: usize) -> u64 {
        self.alloc_bytes(8 * n as u64)
    }

    /// Allocate raw bytes, line-aligned.
    pub fn alloc_bytes(&mut self, bytes: u64) -> u64 {
        let base = (self.next + 127) & !127;
        self.next = base + bytes;
        assert!(
            self.next <= self.limit,
            "workload does not fit in data memory ({} > {})",
            self.next,
            self.limit
        );
        base
    }

    /// Bytes consumed so far.
    pub fn used(&self) -> u64 {
        self.next - Self::DATA_BASE
    }
}

/// Result of one workload execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadRun {
    /// Total simulated cycles from first fork to last join.
    pub cycles: u64,
}

/// A complete benchmark program: binary image, data initialization,
/// orchestration, and numerical verification.
pub trait Workload {
    /// Short benchmark name (`daxpy`, `bt`, `cg`, ...).
    fn name(&self) -> &'static str;

    /// The program binary (cloned into each machine that runs it).
    fn image(&self) -> &CodeImage;

    /// Initialize the data segment.
    fn init(&self, mem: &mut DataMem);

    /// Execute the benchmark's full schedule of parallel regions.
    fn run(
        &self,
        machine: &mut Machine,
        team: Team,
        rt: &OmpRuntime,
        hook: &mut dyn QuantumHook,
    ) -> WorkloadRun;

    /// Check the results against a host-side mirror computation.
    fn verify(&self, mem: &DataMem) -> Result<(), String>;
}

/// Convenience: build a machine for a workload, initialize its data, run it
/// with `hook`, verify, and return `(machine, run)`.
pub fn execute(
    workload: &dyn Workload,
    cfg: &MachineConfig,
    team: Team,
    rt: &OmpRuntime,
    hook: &mut dyn QuantumHook,
) -> (Machine, WorkloadRun) {
    let mut machine = Machine::new(cfg.clone(), workload.image().clone());
    workload.init(&mut machine.shared.mem);
    let run = workload.run(&mut machine, team, rt, hook);
    if let Err(e) = workload.verify(&machine.shared.mem) {
        panic!("workload {} failed verification: {e}", workload.name());
    }
    (machine, run)
}

/// Like [`execute`] but with no observer attached (baseline runs).
pub fn execute_plain(
    workload: &dyn Workload,
    cfg: &MachineConfig,
    team: Team,
) -> (Machine, WorkloadRun) {
    execute(workload, cfg, team, &OmpRuntime::default(), &mut NullHook)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_alignment_and_accounting() {
        let mut a = Arena::new(1 << 20);
        let x = a.alloc_f64(3);
        let y = a.alloc_f64(5);
        assert_eq!(x % 128, 0);
        assert_eq!(y % 128, 0);
        assert!(y >= x + 24, "allocations must not overlap");
        assert!(a.used() >= 24 + 40);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn arena_overflow_panics() {
        let mut a = Arena::new(1 << 17);
        a.alloc_f64(1 << 20);
    }
}
