//! Offline compat shim for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` with no
//! `syn`/`quote` dependency: the input item is parsed directly from the
//! `proc_macro::TokenStream` token tree and the impl is emitted as source
//! text. Supports exactly the shapes this workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default representation);
//! * arbitrary non-macro attributes on items/fields/variants (skipped);
//! * `#[serde(default)]` and `#[serde(default = "path")]` on named fields:
//!   a missing field deserializes to `Default::default()` / `path()` instead
//!   of erroring, so configs and reports stay readable across added fields.
//!   All other `#[serde(...)]` attributes are rejected at compile time;
//! * NO generics — unused in-repo.
//!
//! The generated impls target the value-tree model of the in-tree `serde`
//! shim (`Serialize::to_value` / `Deserialize::from_value`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,
    default: FieldDefault,
}

/// How a missing field deserializes, per `#[serde(default...)]`.
enum FieldDefault {
    /// No attribute: a missing field is an error.
    Required,
    /// `#[serde(default)]`: `Default::default()`.
    DefaultTrait,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

enum Body {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, .. }`
    NamedStruct(Vec<Field>),
    /// `struct S(T, ..);`
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let (name, body) = match parse_item(input) {
        Ok(parsed) => parsed,
        Err(msg) => {
            return format!("compile_error!({:?});", msg).parse().unwrap();
        }
    };
    let code = match mode {
        Mode::Serialize => gen_serialize(&name, &body),
        Mode::Deserialize => gen_deserialize(&name, &body),
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<(String, Body), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected struct/enum, got {other:?}"
            ))
        }
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde_derive shim: expected item name, got {other:?}"
            ))
        }
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported (no generic derives in this workspace)"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            None => Ok((name, Body::UnitStruct)),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok((name, Body::UnitStruct)),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Body::NamedStruct(parse_named_fields(g.stream())?)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok((name, Body::TupleStruct(count_tuple_fields(g.stream()))))
            }
            other => Err(format!(
                "serde_derive shim: unexpected struct body {other:?}"
            )),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok((name, Body::Enum(parse_variants(g.stream())?)))
            }
            other => Err(format!("serde_derive shim: unexpected enum body {other:?}")),
        },
        other => Err(format!(
            "serde_derive shim: unsupported item kind `{other}`"
        )),
    }
}

/// Skips any number of outer attributes (`#[...]`, including doc comments)
/// and a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` field lists (types are skipped at `<`-depth 0;
/// parenthesised types arrive as single `Group` tokens, so tuple commas
/// never leak into the split).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let default = take_field_attrs(&tokens, &mut i)?;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: expected field name, got {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde_derive shim: expected `:` after field `{name}`, got {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(Field { name, default });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Like [`skip_attrs_and_vis`], but inspects `#[serde(...)]` attributes:
/// `default` / `default = "path"` are honored, anything else is rejected
/// (silently ignoring `rename`/`skip`/... would change wire format).
fn take_field_attrs(tokens: &[TokenTree], i: &mut usize) -> Result<FieldDefault, String> {
    let mut default = FieldDefault::Required;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Bracket {
                        if let Some(d) = parse_serde_attr(g.stream())? {
                            default = d;
                        }
                        *i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return Ok(default),
        }
    }
}

/// Parses the inside of one `#[...]`: returns `Some` for a recognized
/// `serde(default...)`, `None` for any non-serde attribute (doc, allow, ...).
fn parse_serde_attr(stream: TokenStream) -> Result<Option<FieldDefault>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match (inner.first(), inner.get(1), inner.get(2)) {
                (Some(TokenTree::Ident(kw)), None, None) if kw.to_string() == "default" => {
                    Ok(Some(FieldDefault::DefaultTrait))
                }
                (
                    Some(TokenTree::Ident(kw)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(lit)),
                ) if kw.to_string() == "default" && eq.as_char() == '=' => {
                    let raw = lit.to_string();
                    let path = raw.trim_matches('"').to_string();
                    if path.is_empty() || path == raw {
                        return Err(format!(
                            "serde_derive shim: expected `default = \"path\"`, got {raw}"
                        ));
                    }
                    Ok(Some(FieldDefault::Path(path)))
                }
                _ => Err(format!(
                    "serde_derive shim: unsupported #[serde(...)] attribute `{}` (only `default` and `default = \"path\"` are implemented)",
                    g.stream()
                )),
            }
        }
        _ => Ok(None),
    }
}

/// Advances past one type, stopping at a `,` outside angle brackets.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    // Tolerate a trailing comma: `struct S(T,);`
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde_derive shim: expected variant name, got {other:?}"
                ))
            }
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len() {
                if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::UnitStruct => "::serde::value::Value::Null".to_string(),
        Body::NamedStruct(fields) => {
            let mut code = String::from(
                "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                code.push_str(&format!(
                    "__fields.push((::std::string::String::from({n:?}), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            code.push_str("::serde::value::Value::Object(__fields) }");
            code
        }
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let mut code = String::from(
                "{ let mut __items: ::std::vec::Vec<::serde::value::Value> = ::std::vec::Vec::new();\n",
            );
            for idx in 0..*n {
                code.push_str(&format!(
                    "__items.push(::serde::Serialize::to_value(&self.{idx}));\n"
                ));
            }
            code.push_str("::serde::value::Value::Array(__items) }");
            code
        }
        Body::Enum(variants) => {
            let mut code = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        code.push_str(&format!(
                            "{name}::{vn} => ::serde::value::Value::String(::std::string::String::from({vn:?})),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let mut inner = String::from(
                                "{ let mut __items: ::std::vec::Vec<::serde::value::Value> = ::std::vec::Vec::new();\n",
                            );
                            for b in &binds {
                                inner.push_str(&format!(
                                    "__items.push(::serde::Serialize::to_value({b}));\n"
                                ));
                            }
                            inner.push_str("::serde::value::Value::Array(__items) }");
                            inner
                        };
                        code.push_str(&format!(
                            "{name}::{vn}({binds}) => {{ let mut __pair: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new(); __pair.push((::std::string::String::from({vn:?}), {inner})); ::serde::value::Value::Object(__pair) }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__fields.push((::std::string::String::from({n:?}), ::serde::Serialize::to_value({n})));\n",
                                n = f.name
                            ));
                        }
                        inner.push_str("::serde::value::Value::Object(__fields) }");
                        code.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{ let mut __pair: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new(); __pair.push((::std::string::String::from({vn:?}), {inner})); ::serde::value::Value::Object(__pair) }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            code.push('}');
            code
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_value(&self) -> ::serde::value::Value {{\n        {body_code}\n    }}\n}}\n"
    )
}

/// One `field_name: <extraction>,` line of a generated struct literal.
/// `ty_literal` is an already-quoted type name for error messages.
fn gen_field_extract(f: &Field, ty_literal: &str) -> String {
    let n = &f.name;
    match &f.default {
        FieldDefault::Required => {
            format!("{n}: ::serde::de::field(__obj, {n:?}, {ty_literal})?,\n")
        }
        FieldDefault::DefaultTrait => format!(
            "{n}: ::serde::de::field_opt(__obj, {n:?}, {ty_literal})?.unwrap_or_default(),\n"
        ),
        FieldDefault::Path(path) => format!(
            "{n}: match ::serde::de::field_opt(__obj, {n:?}, {ty_literal})? {{ ::std::option::Option::Some(__fv) => __fv, ::std::option::Option::None => {path}() }},\n"
        ),
    }
}

fn gen_deserialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::UnitStruct => format!(
            "match __v {{ ::serde::value::Value::Null => ::std::result::Result::Ok({name}), _ => ::std::result::Result::Err(::serde::de::Error::custom(\"expected null for unit struct {name}\")) }}"
        ),
        Body::NamedStruct(fields) => {
            let mut code = format!(
                "{{ let __obj = __v.as_object().ok_or_else(|| ::serde::de::Error::custom(\"expected object for struct {name}\"))?;\n::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                code.push_str(&gen_field_extract(f, &format!("{name:?}")));
            }
            code.push_str("}) }");
            code
        }
        Body::TupleStruct(1) => format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Body::TupleStruct(n) => {
            let mut code = format!(
                "{{ let __arr = __v.as_array().ok_or_else(|| ::serde::de::Error::custom(\"expected array for tuple struct {name}\"))?;\nif __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::de::Error::custom(\"wrong arity for tuple struct {name}\")); }}\n::std::result::Result::Ok({name}(\n"
            );
            for idx in 0..*n {
                code.push_str(&format!("::serde::Deserialize::from_value(&__arr[{idx}])?,\n"));
            }
            code.push_str(")) }");
            code
        }
        Body::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let mut arm = format!(
                            "{vn:?} => {{ let __arr = __inner.as_array().ok_or_else(|| ::serde::de::Error::custom(\"expected array payload for {name}::{vn}\"))?;\nif __arr.len() != {n} {{ return ::std::result::Result::Err(::serde::de::Error::custom(\"wrong arity for {name}::{vn}\")); }}\n::std::result::Result::Ok({name}::{vn}(\n"
                        );
                        for idx in 0..*n {
                            arm.push_str(&format!("::serde::Deserialize::from_value(&__arr[{idx}])?,\n"));
                        }
                        arm.push_str(")) }\n");
                        payload_arms.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "{vn:?} => {{ let __obj = __inner.as_object().ok_or_else(|| ::serde::de::Error::custom(\"expected object payload for {name}::{vn}\"))?;\n::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            arm.push_str(&gen_field_extract(f, &format!("\"{name}::{vn}\"")));
                        }
                        arm.push_str("}) }\n");
                        payload_arms.push_str(&arm);
                    }
                }
            }
            format!(
                "match __v {{\n::serde::value::Value::String(__s) => match __s.as_str() {{\n{unit_arms}__other => ::std::result::Result::Err(::serde::de::Error::custom(&format!(\"unknown unit variant `{{__other}}` for enum {name}\"))),\n}},\n::serde::value::Value::Object(__pairs) if __pairs.len() == 1 => {{\nlet (__tag, __inner) = &__pairs[0];\nmatch __tag.as_str() {{\n{payload_arms}__other => ::std::result::Result::Err(::serde::de::Error::custom(&format!(\"unknown variant `{{__other}}` for enum {name}\"))),\n}}\n}},\n_ => ::std::result::Result::Err(::serde::de::Error::custom(\"expected string or single-key object for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_value(__v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n        {body_code}\n    }}\n}}\n"
    )
}
