//! Offline compat shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! minimal in-tree implementations of its external dependencies (see
//! `crates/compat/README.md`). This one wraps `std::sync` primitives behind
//! parking_lot's panic-free, guard-returning API surface — only the subset
//! the workspace actually uses.

use std::sync::{self, MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly (parking_lot semantics:
/// no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<StdMutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's unpoisoned API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
