//! The JSON-shaped value tree all (de)serialization flows through.

/// A dynamically-typed value mirroring `serde_json::Value`'s shape. Objects
/// keep insertion order (a `Vec` of pairs, not a map) so emitted JSON field
/// order matches declaration order, like real serde's derive output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// JSON number, split by representation so `u64` counters (cycle counts!)
/// round-trip without losing precision through `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Float(f)) => Some(*f),
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Human-readable name of the value's type, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
