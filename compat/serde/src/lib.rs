//! Offline compat shim for `serde`.
//!
//! Upstream serde is a zero-copy visitor framework; this shim replaces it
//! with a much simpler contract that is sufficient for the workspace's
//! needs (JSON reports and JSONL telemetry traces): every `Serialize` type
//! renders itself into a JSON-shaped [`value::Value`] tree, and every
//! `Deserialize` type rebuilds itself from one. `serde_json` (also shimmed
//! in-tree) is then just text ⇄ `Value`.
//!
//! The derive macros come from the in-tree `serde_derive` shim and emit
//! externally-tagged enum representations matching upstream serde's
//! defaults, so the JSON produced here looks like what real serde_json
//! would print for the same types. Of the `#[serde(...)]` attributes, only
//! `default` / `default = "path"` on named fields are supported (missing
//! fields fall back instead of erroring); the derive rejects the rest.

pub mod de;
pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, de::Error>;
}

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(de::Error::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let n = match value {
                    Value::Number(Number::PosInt(n)) => *n,
                    Value::Number(Number::NegInt(n)) => {
                        return Err(de::Error::custom(format!(
                            "cannot deserialize negative {n} into {}",
                            stringify!($t)
                        )))
                    }
                    other => return Err(de::Error::unexpected(stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| {
                    de::Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let wide: i128 = match value {
                    Value::Number(Number::PosInt(n)) => *n as i128,
                    Value::Number(Number::NegInt(n)) => *n as i128,
                    other => return Err(de::Error::unexpected(stringify!($t), other)),
                };
                <$t>::try_from(wide).map_err(|_| {
                    de::Error::custom(format!("{wide} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                match value {
                    Value::Number(Number::Float(f)) => Ok(*f as $t),
                    Value::Number(Number::PosInt(n)) => Ok(*n as $t),
                    Value::Number(Number::NegInt(n)) => Ok(*n as $t),
                    // serde_json renders non-finite floats as null; accept
                    // them back as NaN so round-trips don't error.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(de::Error::unexpected(stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(de::Error::unexpected("char", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(de::Error::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        Ok(value.clone())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, de::Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| de::Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, de::Error> {
                let items = value.as_array().ok_or_else(|| de::Error::unexpected("tuple array", value))?;
                let arity = [$($idx),+].len();
                if items.len() != arity {
                    return Err(de::Error::custom(format!(
                        "expected tuple of arity {arity}, got array of {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i64::from_value(&(-42i64).to_value()).unwrap(), -42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn container_round_trips() {
        let v = vec![(3u32, 9u64), (4, 16)];
        assert_eq!(Vec::<(u32, u64)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let a = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_value(&a.to_value()).unwrap(), a);
    }

    #[test]
    fn range_errors_are_reported() {
        let big = Value::Number(Number::PosInt(300));
        assert!(u8::from_value(&big).is_err());
        let neg = Value::Number(Number::NegInt(-1));
        assert!(u32::from_value(&neg).is_err());
    }
}
