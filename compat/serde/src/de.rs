//! Deserialization error type and helpers used by generated code.

use std::fmt;

use crate::value::Value;
use crate::Deserialize;

/// Deserialization failure: a message, nothing structured.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    pub fn unexpected(expected: &str, got: &Value) -> Self {
        Error {
            msg: format!("expected {expected}, got {}", got.kind_name()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Extracts and deserializes field `name` from a struct object. Used by the
/// `serde_derive` shim's generated `from_value` bodies.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str, ty: &str) -> Result<T, Error> {
    match field_opt(obj, name, ty)? {
        Some(v) => Ok(v),
        None => Err(Error::custom(format!("missing field `{name}` for {ty}"))),
    }
}

/// Like [`field`], but a missing field is `Ok(None)` instead of an error.
/// Backs `#[serde(default)]` / `#[serde(default = "path")]` in the derive
/// shim: present-but-malformed values still fail loudly.
pub fn field_opt<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<Option<T>, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map(Some)
            .map_err(|e| Error::custom(format!("field `{name}` of {ty}: {e}"))),
        None => Ok(None),
    }
}
