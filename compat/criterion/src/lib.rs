//! Offline compat shim for `criterion`.
//!
//! Implements the bench-harness API surface the workspace's `[[bench]]`
//! targets use — `Criterion`, `BenchmarkGroup`, `Bencher` (`iter`,
//! `iter_batched`, `iter_custom`), `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with plain wall-clock
//! timing and one-line text output instead of upstream's statistics,
//! HTML reports and plots. Good enough to compare before/after numbers by
//! eye and to guard hot paths in CI.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle; collects per-run display settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(20),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Upstream disables gnuplot/plotters output; the shim never plots, so
    /// this is a no-op kept for manifest-level compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let settings = self.clone();
        run_one(&id.into_benchmark_id().label, &settings, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let settings = self.clone();
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            settings,
        }
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    settings: Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.settings.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, &self.settings, f);
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything `bench_function` accepts as a name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Batch sizing hint for `iter_batched`; the shim times per-invocation
/// either way, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; the routine registers how to iterate.
pub struct Bencher<'a> {
    settings: &'a Criterion,
    iters: u64,
    elapsed: Duration,
}

impl Bencher<'_> {
    /// Times `routine` in a loop for roughly the configured measurement
    /// window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up (untimed).
        let warm_until = Instant::now() + self.settings.warm_up_time;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let budget = self.settings.measurement_time;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            // Check the clock with decreasing frequency as counts grow so
            // nanosecond-scale routines aren't dominated by `Instant::now`.
            if (iters.is_power_of_two() || iters.is_multiple_of(1024)) && start.elapsed() >= budget
            {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let budget = self.settings.measurement_time;
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        let wall_start = Instant::now();
        while timed < budget && wall_start.elapsed() < budget.saturating_mul(8) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = timed;
    }

    /// The routine measures itself and reports the total duration for the
    /// requested number of iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        let iters = self.settings.sample_size.max(1) as u64;
        self.elapsed = routine(iters);
        self.iters = iters;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, settings: &Criterion, mut f: F) {
    let mut bencher = Bencher {
        settings,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters > 0 {
        bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
    } else {
        0.0
    };
    println!(
        "{label:<50} time: {:>14} /iter  ({} iters)",
        format_ns(per_iter),
        bencher.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Defines a function that runs a list of benchmark functions. Supports
/// both upstream forms: `criterion_group!(name, target...)` and the
/// `name = ...; config = ...; targets = ...` block form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards filter/handshake flags; the shim runs
            // everything and ignores them.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn iter_measures_something() {
        let mut c = quick();
        c.bench_function("shim/iter", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
    }

    #[test]
    fn groups_and_custom_timing_work() {
        let mut c = quick();
        let mut g = c.benchmark_group("shim");
        g.sample_size(4);
        g.bench_function(BenchmarkId::from_parameter("custom"), |b| {
            b.iter_custom(|iters| Duration::from_nanos(10 * iters))
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
