//! Offline compat shim for `proptest`.
//!
//! Reimplements the subset of proptest's API the workspace's property tests
//! use: the [`strategy::Strategy`] trait (with `prop_map` and `boxed`),
//! range/`Just`/`any`/tuple/`prop_oneof!` strategies, `prop::collection::vec`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **no shrinking** — a failing case reports the generated inputs but is
//!   not minimized;
//! * generation is deterministic per test (seeded from the test's name), so
//!   failures reproduce exactly on re-run;
//! * `prop_assert*` panics (upstream returns `Err`), which the libtest
//!   harness reports identically.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniformly picks one of several strategies with the same value type.
/// Weighted arms (`n => strat`) are not supported (unused in-repo).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     /// docs / attributes allowed
///     #[test]
///     fn name(a in strat_a, b in strat_b) { ...body... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strats = ( $( $strat, )+ );
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let ( $( $arg, )+ ) =
                    $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                let __run = || $body;
                __run();
                let _ = __case;
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
