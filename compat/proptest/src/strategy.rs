//! The `Strategy` trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`'s heterogeneous
    /// arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

// ------------------------------------------------------------------ any

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

/// `any::<T>()` — generates arbitrary values of `T`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

// --------------------------------------------------------------- ranges

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// --------------------------------------------------------------- tuples

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::for_test("ranges_and_maps_compose");
        let s = (0u8..10, -5i64..=5).prop_map(|(a, b)| (a as i64) + b);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((-5..15).contains(&v));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof_hits_every_arm");
        let s = OneOf::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let s = 0u64..1_000_000;
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
