//! Test configuration and the deterministic RNG behind generation.

/// Per-test configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator: xorshift64* seeded from the test's name, so a
/// failure reproduces exactly on the next `cargo test` run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: if h == 0 { 0x9E37_79B9_7F4A_7C15 } else { h },
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
