//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable size specifications for [`vec`].
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_lengths_respect_the_size_range() {
        let mut rng = TestRng::for_test("vec_lengths_respect_the_size_range");
        let s = vec(0u32..10, 1..6);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((1..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
