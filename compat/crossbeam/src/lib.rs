//! Offline compat shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — MPMC channels with the crossbeam API
//! (cloneable receivers, disconnect-aware `send`/`recv`, bounded channels
//! with non-blocking `try_send`) — implemented over `Mutex` + `Condvar`.
//! Only the surface the workspace uses is implemented; throughput is
//! adequate for the simulator's per-quantum message rates.

pub mod channel;
