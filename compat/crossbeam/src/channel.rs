//! MPMC channels with crossbeam's API shape.
//!
//! `unbounded()` never blocks senders; `bounded(cap)` blocks `send` at
//! capacity and lets `try_send` fail fast with `TrySendError::Full` — the
//! property the telemetry ring relies on so emitters can drop instead of
//! stalling. Disconnection is tracked by counting live `Sender`/`Receiver`
//! clones.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_for_send(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }

    fn disconnected_for_recv(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects when
/// every `Sender` is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC); the channel
/// disconnects when every `Receiver` is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone. The
/// unsent message is handed back.
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive operation"),
            RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` messages at a time.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued, or errors if all receivers
    /// are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if self.shared.disconnected_for_send() {
                return Err(SendError(msg));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self.shared.not_full.wait(queue).unwrap();
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues without blocking; fails with `Full` at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        if self.shared.disconnected_for_send() {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake receivers so they observe disconnect.
            let _guard = self.shared.queue.lock().unwrap();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or errors once the channel is empty
    /// and all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvError);
            }
            queue = self.shared.not_empty.wait(queue).unwrap();
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(msg) = queue.pop_front() {
            drop(queue);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if self.shared.disconnected_for_recv() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks for at most `timeout` waiting for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _result) = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap();
            queue = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains every message currently queued, without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: wake blocked senders so they error out.
            let _guard = self.shared.queue.lock().unwrap();
            self.shared.not_full.notify_all();
        }
    }
}

/// Iterator over [`Receiver::try_iter`]; stops at the first empty poll.
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = unbounded();
        let t = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }
}
