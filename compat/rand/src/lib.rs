//! Offline compat shim for the `rand` crate (0.8 API subset).
//!
//! The workspace seeds every generator explicitly (`seed_from_u64`), so all
//! that matters here is a deterministic, well-mixed stream — provided by
//! SplitMix64 seeding into an xorshift64* core. Only the API surface the
//! kernels use is implemented: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::gen_range` over integer and float ranges.
//!
//! Note the stream differs from upstream rand's `SmallRng`; in-repo golden
//! values were produced with this shim.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value of a type with an obvious uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Seeding interface; only the convenience `seed_from_u64` path is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(word: u64) -> f64 {
    // 53 high-quality mantissa bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (unit_f64(rng.next_u64()) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator: xorshift64* over a
    /// SplitMix64-expanded seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 finalizer: spreads low-entropy seeds across the
            // whole word and never yields 0 for the xorshift state.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(0xC0B7A);
        let mut b = SmallRng::seed_from_u64(0xC0B7A);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&v));
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_vary() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut lo_seen = f64::MAX;
        let mut hi_seen = f64::MIN;
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        assert!(
            lo_seen < -0.4 && hi_seen > 0.4,
            "poor coverage: [{lo_seen}, {hi_seen}]"
        );
    }
}
