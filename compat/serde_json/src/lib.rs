//! Offline compat shim for `serde_json`.
//!
//! Text layer over the in-tree `serde` shim's value model: a recursive-
//! descent JSON parser and compact/pretty writers. Integers print from
//! their native `u64`/`i64` representation (no `f64` round-trip, so cycle
//! counters keep full precision); floats rely on Rust's shortest-round-trip
//! `Display`.

use std::fmt;

use serde::{de, Deserialize, Serialize};

pub use serde::value::{Number, Value};

/// Parse or serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<de::Error> for Error {
    fn from(e: de::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-indented JSON (two spaces, like upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_str(text)?;
    Ok(T::from_value(&value)?)
}

fn parse_value_str(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

// --------------------------------------------------------------- writing

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                let s = f.to_string();
                out.push_str(&s);
                // `Display` prints integral floats bare ("1"); keep the
                // decimal point so the value parses back as a float.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // Upstream serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let number = if is_float {
            Number::Float(
                text.parse()
                    .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
            )
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Parse the magnitude, negate: covers i64::MIN via i64 parse.
            match text.parse::<i64>() {
                Ok(v) => Number::NegInt(v),
                Err(_) => Number::Float(
                    stripped
                        .parse::<f64>()
                        .map(|m| -m)
                        .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(
                    text.parse()
                        .map_err(|_| Error::new(format!("invalid number `{text}`")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("a".into(), Value::Number(Number::PosInt(u64::MAX))),
            ("b".into(), Value::Number(Number::NegInt(-7))),
            ("c".into(), Value::Number(Number::Float(0.1))),
            ("d".into(), Value::String("hi \"there\"\n".into())),
            (
                "e".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("f".into(), Value::Object(vec![])),
        ]);
        let text = to_string(&VRef(&v)).unwrap();
        let back: Value = parse_value_str(&text).unwrap();
        assert_eq!(back, v);
    }

    // Local wrapper so the test can serialize a raw Value.
    struct VRef<'a>(&'a Value);
    impl serde::Serialize for VRef<'_> {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = parse_value_str(r#""aé😀\tb""#).unwrap();
        assert_eq!(v, Value::String("aé😀\tb".to_string()));
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v = Value::Object(vec![(
            "xs".into(),
            Value::Array(vec![Value::Number(Number::PosInt(1))]),
        )]);
        let text = to_string_pretty(&VRef(&v)).unwrap();
        assert!(text.contains("\n  \"xs\": [\n    1\n  ]"), "got: {text}");
        assert_eq!(parse_value_str(&text).unwrap(), v);
    }

    #[test]
    fn float_display_keeps_decimal_point() {
        let text = to_string(&VRef(&Value::Number(Number::Float(2.0)))).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(
            parse_value_str(&text).unwrap(),
            Value::Number(Number::Float(2.0))
        );
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value_str("1 2").is_err());
        assert!(parse_value_str("{\"a\":}").is_err());
    }
}
