//! Bring your own kernel: write an Itanium-style binary with the assembler,
//! run it under the OpenMP runtime, and let COBRA optimize it.
//!
//! The kernel is a hand-written software-pipelined STREAM-triad
//! (`c[i] = a[i] + s * b[i]`) built directly with `cobra-isa`'s assembler
//! and `minicc`'s pipelined-loop generator — the same path a compiler
//! writer would use to target this machine. The example then attaches
//! COBRA with the blanket `.excl` strategy and shows the patched
//! disassembly next to the original.
//!
//! Run with: `cargo run --release --example custom_kernel`

use cobra::isa::{disasm, Assembler};
use cobra::kernels::{
    emit_coef, emit_ptr, emit_stream_loop, emit_trip_count, PrefetchPolicy, Stream, StreamLoopSpec,
    StreamOp,
};
use cobra::machine::{Machine, MachineConfig};
use cobra::omp::{abi, OmpRuntime, Team};
use cobra::rt::{Cobra, Strategy};

const N: usize = 24 * 1024; // elements per array (192 KB each)
const REPS: usize = 24;

fn build_triad(policy: &PrefetchPolicy) -> cobra::isa::CodeImage {
    let mut a = Assembler::new();
    a.symbol("triad_body");
    // args: r12 = a[], r13 = b[], r14 = c[], r15 = s bits
    emit_coef(&mut a, 6, abi::R_ARG0 + 3);
    emit_ptr(&mut a, 2, abi::R_ARG0 + 1, abi::R_LO, 0, 3); // x1 = b
    emit_ptr(&mut a, 3, abi::R_ARG0, abi::R_LO, 0, 3); // x2 = a
    emit_ptr(&mut a, 4, abi::R_ARG0 + 2, abi::R_LO, 0, 3); // y  = c
    emit_trip_count(&mut a, 20, abi::R_LO, abi::R_HI);
    a.addi(27, 2, policy.distance_bytes as i32);
    a.addi(28, 4, policy.distance_bytes as i32);
    let spec = StreamLoopSpec {
        op: StreamOp::Triad,
        x1: Stream { ptr: 2, stride: 8 },
        x2: Some(Stream { ptr: 3, stride: 8 }),
        y: Some(Stream { ptr: 4, stride: 8 }),
        n: 20,
        coef: 6,
        acc: 9,
        prefetch: vec![Stream { ptr: 27, stride: 8 }, Stream { ptr: 28, stride: 8 }],
        burst: vec![4],
    };
    emit_stream_loop(&mut a, policy, &spec);
    a.hlt();
    a.finish()
}

fn main() {
    let cfg = MachineConfig::smp4();
    let image = build_triad(&PrefetchPolicy::aggressive());
    println!(
        "=== generated triad kernel ===\n{}",
        disasm::disasm_image(&image)
    );

    let mut machine = Machine::new(cfg.clone(), image);
    // Lay the three arrays out after the reserved low region.
    let (a_base, b_base, c_base) = (0x1_0000u64, 0x4_0000u64, 0x7_0000u64);
    let s = 3.0f64;
    let av: Vec<f64> = (0..N).map(|i| (i % 11) as f64).collect();
    let bv: Vec<f64> = (0..N).map(|i| (i % 7) as f64 * 0.5).collect();
    machine.shared.mem.write_f64_slice(a_base, &av);
    machine.shared.mem.write_f64_slice(b_base, &bv);

    let mut cobra = Cobra::builder()
        .strategy(Strategy::ExclHint)
        .attach(&mut machine);
    let rt = OmpRuntime {
        quantum: 20_000,
        ..OmpRuntime::default()
    };
    let team = Team::new(4);
    let entry = machine.shared.code.image().symbol("triad_body").unwrap();
    let args = [
        a_base as i64,
        b_base as i64,
        c_base as i64,
        s.to_bits() as i64,
    ];
    for _ in 0..REPS {
        rt.parallel_for(&mut machine, team, entry, 0, N as i64, &args, &mut cobra);
    }
    let report = cobra.detach(&mut machine);

    // Verify c = a + s*b.
    for i in (0..N).step_by(997) {
        let got = machine.shared.mem.read_f64(c_base + 8 * i as u64);
        let want = s.mul_add(bv[i], av[i]);
        assert_eq!(got, want, "c[{i}]");
    }
    println!("numerics verified; COBRA: {}", report.summary());

    if let Some(plan) = report.applied.first() {
        if let Some(entry) = plan.trace_entry {
            let image = machine.shared.code.image();
            println!("\n=== optimized trace at {entry} ===");
            print!("{}", disasm::disasm_range(image, entry, image.len()));
        }
    }
}
