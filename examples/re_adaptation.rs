//! Continuous Binary **Re-Adaptation** — the scenario COBRA is named for.
//!
//! One program, two phases: the DAXPY kernel first runs over a 128 KB
//! slice of its arrays (the coherent-miss pathology: prefetches hurt),
//! then switches to the full 2 MB working set (prefetches are essential).
//!
//! Attached COBRA first deploys `noprefetch` on the hot loop; when the
//! working set changes, the phase detector fires on the miss-rate shift,
//! the CPI monitor sees the deployment regress, and the framework
//! *reverts* the patch — re-adapting the binary to the new behaviour
//! while the program keeps running.
//!
//! Run with: `cargo run --release --example re_adaptation`

use cobra::kernels::{Daxpy, DaxpyParams, PrefetchPolicy, Workload};
use cobra::machine::{Machine, MachineConfig};
use cobra::omp::{NullHook, OmpRuntime, QuantumHook, Team};
use cobra::rt::{Cobra, Strategy};

const SMALL_N: i64 = 8 * 1024; // 128 KB working set (two arrays)
const PHASE1_REPS: usize = 60;
const PHASE2_REPS: usize = 16;

fn run_two_phase(hook: &mut dyn QuantumHook, machine: &mut Machine, wl: &Daxpy) -> (u64, u64) {
    let rt = OmpRuntime {
        quantum: 20_000,
        ..OmpRuntime::default()
    };
    let team = Team::new(4);
    let full_n = wl.params().n() as i64;
    let args = [
        wl.x_addr() as i64,
        wl.y_addr() as i64,
        wl.params().a.to_bits() as i64,
    ];
    let entry = machine.shared.code.image().symbol("daxpy_body").unwrap();

    let start = machine.cycle();
    for _ in 0..PHASE1_REPS {
        rt.parallel_for(machine, team, entry, 0, SMALL_N, &args, hook);
    }
    let phase1 = machine.cycle() - start;
    for _ in 0..PHASE2_REPS {
        rt.parallel_for(machine, team, entry, 0, full_n, &args, hook);
    }
    (phase1, machine.cycle() - start - phase1)
}

fn main() {
    let cfg = MachineConfig::smp4();
    let params = DaxpyParams::new(2 * 1024 * 1024, 1);

    // Baseline: no COBRA.
    let wl = Daxpy::build(params, &PrefetchPolicy::aggressive(), cfg.mem_bytes);
    let mut m = Machine::new(cfg.clone(), wl.image().clone());
    wl.init(&mut m.shared.mem);
    let (b1, b2) = run_two_phase(&mut NullHook, &mut m, &wl);
    println!("baseline:   phase1 {b1:>9} cycles   phase2 {b2:>9} cycles");

    // With COBRA attached.
    let wl = Daxpy::build(params, &PrefetchPolicy::aggressive(), cfg.mem_bytes);
    let mut m = Machine::new(cfg.clone(), wl.image().clone());
    wl.init(&mut m.shared.mem);
    let mut cobra = Cobra::builder()
        .strategy(Strategy::NoPrefetch)
        .attach(&mut m);
    let (c1, c2) = run_two_phase(&mut cobra, &mut m, &wl);
    let report = cobra.detach(&mut m);
    println!("with COBRA: phase1 {c1:>9} cycles   phase2 {c2:>9} cycles");
    println!(
        "phase-1 speedup {:+.1}%   phase-2 cost after re-adaptation {:+.1}%",
        100.0 * (b1 as f64 / c1 as f64 - 1.0),
        100.0 * (b2 as f64 / c2 as f64 - 1.0),
    );
    println!("\n{}", report.summary());
    for p in &report.applied {
        println!("  tick {:>3}: APPLY  {}", p.tick, p.description);
    }
    for r in &report.reverted {
        println!(
            "  tick {:>3}: REVERT plan {} — {}",
            r.tick, r.plan_id, r.reason
        );
    }
}
