//! The §2 motivation study: one compiled binary cannot fit every runtime
//! environment.
//!
//! Sweeps the OpenMP DAXPY kernel across working sets (128 KB / 512 KB /
//! 2 MB) and thread counts (1 / 2 / 4) under the three static prefetch
//! strategies of Figure 3 — `prefetch` (icc baseline), `noprefetch`
//! (lfetch → NOP), `prefetch.excl` — and prints which static binary wins
//! each cell. The crossovers are the paper's argument for *runtime*
//! binary re-adaptation.
//!
//! Run with: `cargo run --release --example daxpy_adaptive`

use cobra::kernels::workload::execute_plain;
use cobra::kernels::{Daxpy, DaxpyParams, PrefetchPolicy};
use cobra::machine::MachineConfig;
use cobra::omp::Team;

fn main() {
    let cfg = MachineConfig::smp4();
    let variants: [(&str, PrefetchPolicy); 3] = [
        ("prefetch", PrefetchPolicy::aggressive()),
        ("noprefetch", PrefetchPolicy::none()),
        ("prefetch.excl", PrefetchPolicy::aggressive_excl()),
    ];
    println!(
        "{:>6} {:>8} | {:>12} {:>12} {:>13} | winner",
        "ws", "threads", "prefetch", "noprefetch", "prefetch.excl"
    );
    for ws in [128 * 1024, 512 * 1024, 2 * 1024 * 1024] {
        for threads in [1usize, 2, 4] {
            let mut cells = Vec::new();
            for (name, policy) in &variants {
                // Difference a warm run against a short run: steady state,
                // as the paper's 10^6 repetitions measure.
                let short = Daxpy::build(DaxpyParams::new(ws, 8), policy, cfg.mem_bytes);
                let (_m, a) = execute_plain(&short, &cfg, Team::new(threads));
                let long = Daxpy::build(DaxpyParams::new(ws, 24), policy, cfg.mem_bytes);
                let (_m, b) = execute_plain(&long, &cfg, Team::new(threads));
                cells.push((*name, b.cycles - a.cycles));
            }
            let best = cells.iter().min_by_key(|(_, c)| *c).unwrap().0;
            println!(
                "{:>5}K {:>8} | {:>12} {:>12} {:>13} | {}",
                ws / 1024,
                threads,
                cells[0].1,
                cells[1].1,
                cells[2].1,
                best
            );
        }
    }
    println!("\nNo single column wins every row — the paper's case for COBRA.");
}
