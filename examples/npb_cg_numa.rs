//! COBRA on the CG benchmark on the cc-NUMA machine.
//!
//! Runs the conjugate-gradient kernel (sparse CSR matvec + vector updates +
//! reductions) on the 8-CPU SGI-Altix-like machine — the platform where the
//! paper reports its largest gains, because remote coherent misses cost far
//! more than front-side-bus snoops. Prints per-CPU coherence statistics and
//! the COBRA deployment log.
//!
//! Run with: `cargo run --release --example npb_cg_numa`

use cobra::kernels::npb;
use cobra::kernels::workload::execute_plain;
use cobra::kernels::PrefetchPolicy;
use cobra::machine::{Event, Machine, MachineConfig};
use cobra::omp::{OmpRuntime, Team};
use cobra::rt::{Cobra, Strategy};

fn main() {
    let cfg = MachineConfig::altix8();
    let team = Team::new(8);

    let baseline = npb::build(
        npb::Benchmark::Cg,
        &PrefetchPolicy::aggressive(),
        cfg.mem_bytes,
    );
    let (m, base) = execute_plain(&*baseline, &cfg, team);
    println!("baseline cg.S on {}: {} cycles", cfg.name, base.cycles);
    println!("\nper-CPU coherence view (baseline):");
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>8}",
        "cpu", "BUS_MEM", "RD_HITM", "UPGRADE", "ratio"
    );
    for (cpu, st) in m.stats().iter().enumerate() {
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>8.3}",
            cpu,
            st.get(Event::BusMemory),
            st.get(Event::BusRdHitm),
            st.get(Event::BusUpgrade),
            st.coherent_ratio().unwrap_or(0.0),
        );
    }

    let wl = npb::build(
        npb::Benchmark::Cg,
        &PrefetchPolicy::aggressive(),
        cfg.mem_bytes,
    );
    let mut machine = Machine::new(cfg.clone(), wl.image().clone());
    wl.init(&mut machine.shared.mem);
    let mut cobra = Cobra::builder()
        .strategy(Strategy::NoPrefetch)
        .attach(&mut machine);
    let rt = OmpRuntime {
        quantum: 20_000,
        ..OmpRuntime::default()
    };
    let run = wl.run(&mut machine, team, &rt, &mut cobra);
    let report = cobra.detach(&mut machine);
    wl.verify(&machine.shared.mem)
        .expect("CG must still converge correctly");

    println!("\nwith COBRA (noprefetch strategy): {} cycles", run.cycles);
    println!(
        "speedup: {:+.1}%",
        100.0 * (base.cycles as f64 / run.cycles as f64 - 1.0)
    );
    println!("\n{}", report.summary());
    for p in &report.applied {
        println!("  tick {:>3}: {}", p.tick, p.description);
    }
    for r in &report.reverted {
        println!(
            "  tick {:>3}: reverted plan {} — {}",
            r.tick, r.plan_id, r.reason
        );
    }
}
