//! Quickstart: watch COBRA speed up a multithreaded program at runtime.
//!
//! Builds the paper's OpenMP DAXPY kernel (Figure 1) with icc-style
//! aggressive prefetching, runs it on the simulated 4-way Itanium 2 SMP
//! with a 128 KB working set on 4 threads — the §2 pathological case —
//! first as-is, then with COBRA attached. COBRA samples the hardware
//! performance monitors, finds the hot loop whose prefetches cause
//! coherent misses, and rewrites them to NOPs while the program runs.
//!
//! Run with: `cargo run --release --example quickstart`

use cobra::kernels::workload::{execute_plain, Workload};
use cobra::kernels::{Daxpy, DaxpyParams, PrefetchPolicy};
use cobra::machine::{Machine, MachineConfig};
use cobra::omp::{OmpRuntime, Team};
use cobra::rt::Cobra;

fn main() {
    let machine_cfg = MachineConfig::smp4();
    let team = Team::new(4);
    // 128 KB working set, enough outer repetitions to reach steady state.
    let params = DaxpyParams::new(128 * 1024, 48);

    // --- baseline: the compiler's aggressive-prefetch binary, no COBRA ---
    let baseline = Daxpy::build(params, &PrefetchPolicy::aggressive(), machine_cfg.mem_bytes);
    let (_m, base) = execute_plain(&baseline, &machine_cfg, team);
    println!("baseline (prefetch):  {:>9} cycles", base.cycles);

    // --- same binary, with COBRA attached ---
    let wl = Daxpy::build(params, &PrefetchPolicy::aggressive(), machine_cfg.mem_bytes);
    let mut machine = Machine::new(machine_cfg.clone(), wl.image().clone());
    wl.init(&mut machine.shared.mem);
    let mut cobra = Cobra::builder().attach(&mut machine);
    let rt = OmpRuntime {
        quantum: 20_000,
        ..OmpRuntime::default()
    };
    let run = wl.run(&mut machine, team, &rt, &mut cobra);
    let report = cobra.detach(&mut machine);
    wl.verify(&machine.shared.mem)
        .expect("numerics preserved under patching");

    println!("with COBRA:           {:>9} cycles", run.cycles);
    println!(
        "speedup:              {:+.1}%",
        100.0 * (base.cycles as f64 / run.cycles as f64 - 1.0)
    );
    println!("\nCOBRA activity: {}", report.summary());
    for plan in &report.applied {
        println!("  tick {:>3}: {}", plan.tick, plan.description);
    }
}
