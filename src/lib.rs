//! # cobra — reproduction of *COBRA: An Adaptive Runtime Binary Optimization
//! # Framework for Multithreaded Applications* (Kim, Hsu, Yew; ICPP 2007)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`isa`] — the Itanium-2-inspired instruction set and binary format.
//! * [`machine`] — the multiprocessor timing simulator (MESI SMP bus and
//!   cc-NUMA directory machines, in-order cores, hardware performance
//!   monitors).
//! * [`perfmon`] — the sampling-driver analogue feeding COBRA's profiler.
//! * [`omp`] — a minimal OpenMP-like runtime for the simulated machine.
//! * [`kernels`] — the `minicc` code generator plus DAXPY and the NPB-like
//!   benchmark suite.
//! * [`rt`] — **the paper's contribution**: the COBRA framework itself
//!   (monitoring threads, the optimization thread, trace selection, and the
//!   `noprefetch` / `lfetch.excl` binary optimizations), attached via
//!   `rt::Cobra::builder()`, with typed pipeline telemetry in
//!   `rt::telemetry`.
//! * [`harness`] — experiment drivers regenerating every table and figure.
//!
//! See `README.md` for a guided tour and `examples/quickstart.rs` for the
//! fastest way to watch COBRA speed up a program.

pub use cobra_harness as harness;
pub use cobra_isa as isa;
pub use cobra_kernels as kernels;
pub use cobra_machine as machine;
pub use cobra_omp as omp;
pub use cobra_perfmon as perfmon;
pub use cobra_rt as rt;
