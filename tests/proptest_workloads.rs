//! Cross-crate property tests: randomly generated workloads must compute
//! exactly what a host mirror computes, under every prefetch policy and
//! any team size — i.e. code generation, the simulator, the OpenMP runtime
//! and binary rewriting never change program semantics.

use cobra::kernels::npb::{ArrayDecl, PassSpec, SweepKernel};
use cobra::kernels::workload::execute_plain;
use cobra::kernels::{Daxpy, DaxpyParams, PrefetchPolicy, StreamOp};
use cobra::machine::MachineConfig;
use cobra::omp::Team;
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = PrefetchPolicy> {
    (any::<bool>(), any::<bool>(), 64i64..4096, 0u32..8).prop_map(
        |(enabled, excl, distance, burst)| PrefetchPolicy {
            enabled,
            excl,
            distance_bytes: distance,
            burst_lines: burst,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DAXPY computes y += a*x exactly for arbitrary sizes, repetition
    /// counts, team sizes and prefetch policies (verification is built
    /// into `execute_plain`, which panics on mismatch).
    #[test]
    fn daxpy_always_verifies(
        n_lines in 8usize..96,
        reps in 1usize..5,
        threads in 1usize..5,
        policy in arb_policy(),
    ) {
        let cfg = MachineConfig::smp4();
        let ws = n_lines * 256; // two arrays of n_lines cache lines
        let d = Daxpy::build(DaxpyParams::new(ws, reps), &policy, cfg.mem_bytes);
        let (_m, run) = execute_plain(&d, &cfg, Team::new(threads.min(4)));
        prop_assert!(run.cycles > 0);
    }

    /// Randomly composed sweep kernels (random ops, shifts, strides and
    /// coefficients) match their host mirror bit-for-bit on 4 threads.
    #[test]
    fn random_sweep_kernels_match_mirror(
        seed_passes in prop::collection::vec(
            (0usize..3, -4i64..=4, 0.01f64..0.2, any::<bool>()),
            1..6,
        ),
        iterations in 1usize..4,
        threads in 1usize..5,
    ) {
        // Arrays: two unit-stride grids and one half-size coarse grid.
        let len = 384usize;
        let arrays = vec![
            ArrayDecl { name: "u", len, halo: 8 },
            ArrayDecl { name: "v", len, halo: 8 },
            ArrayDecl { name: "c", len: len / 2, halo: 8 },
        ];
        let mut passes = Vec::new();
        for (k, &(kind, shift, coef, strided)) in seed_passes.iter().enumerate() {
            let pass = match kind {
                // shifted daxpy between the two fine grids (alternating)
                0 => PassSpec::shifted(
                    "daxpy",
                    StreamOp::Daxpy,
                    k % 2,
                    1 - k % 2,
                    shift,
                    coef,
                    len,
                ),
                // scale into the other grid (optionally strided restrict)
                1 => {
                    if strided {
                        PassSpec {
                            label: "restrict",
                            op: StreamOp::Scale,
                            dst: 2,
                            src: k % 2,
                            src2: None,
                            src_offset: 0,
                            src2_offset: 0,
                            coef,
                            dst_stride: 1,
                            src_stride: 2,
                            len: len / 2,
                        }
                    } else {
                        PassSpec::shifted("scale", StreamOp::Scale, 1 - k % 2, k % 2, shift, coef, len)
                    }
                }
                // prolong from the coarse grid
                _ => PassSpec {
                    label: "prolong",
                    op: StreamOp::Daxpy,
                    dst: k % 2,
                    src: 2,
                    src2: None,
                    src_offset: 0,
                    src2_offset: 0,
                    coef,
                    dst_stride: 2,
                    src_stride: 1,
                    len: len / 2,
                },
            };
            passes.push(pass);
        }
        let kernel = SweepKernel::build(
            "prop",
            arrays,
            passes,
            iterations,
            &PrefetchPolicy::aggressive(),
            8 << 20,
        );
        // execute_plain panics if the simulated result differs from the
        // host mirror anywhere (including halos).
        let cfg = MachineConfig::smp4();
        let (_m, run) = execute_plain(&kernel, &cfg, Team::new(threads.min(4)));
        prop_assert!(run.cycles > 0);
    }

    /// Cycle counts are monotone in repetitions: more work never takes
    /// fewer cycles (a sanity invariant of the timing model).
    #[test]
    fn cycles_monotone_in_reps(reps in 1usize..6, threads in 1usize..5) {
        let cfg = MachineConfig::smp4();
        let cycles = |r: usize| {
            let d = Daxpy::build(
                DaxpyParams::new(32 * 1024, r),
                &PrefetchPolicy::aggressive(),
                cfg.mem_bytes,
            );
            let (_m, run) = execute_plain(&d, &cfg, Team::new(threads.min(4)));
            run.cycles
        };
        prop_assert!(cycles(reps + 1) > cycles(reps));
    }
}
