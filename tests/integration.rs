//! Cross-crate integration tests: the full stack from ISA through machine,
//! OpenMP runtime, workloads, and the COBRA framework.

use cobra::kernels::workload::{execute_plain, Workload};
use cobra::kernels::{npb, Daxpy, DaxpyParams, PrefetchPolicy};
use cobra::machine::{Event, Machine, MachineConfig};
use cobra::omp::{OmpRuntime, Team};
use cobra::rt::{Cobra, Strategy};

/// Every benchmark binary decodes cleanly and carries the symbols and
/// structure the optimizer relies on.
#[test]
fn all_npb_binaries_decode_and_are_bundle_aligned() {
    let cfg = MachineConfig::smp4();
    for &b in &npb::Benchmark::ALL {
        let wl = npb::build(b, &PrefetchPolicy::aggressive(), cfg.mem_bytes);
        let image = wl.image();
        let insns = image.decode_all().expect("every word decodes");
        assert_eq!(insns.len() as u32, image.len());
        assert_eq!(image.len() % cobra::isa::SLOTS_PER_BUNDLE, 0);
        assert!(
            image.symbols().count() >= 1,
            "{}: named entry points",
            b.name()
        );
    }
}

/// The three smallest coherent benchmarks verify on both machines under
/// every static policy (numerical correctness is policy-independent).
#[test]
fn npb_verifies_across_machines_and_policies() {
    for (cfg, threads) in [(MachineConfig::smp4(), 4), (MachineConfig::altix8(), 8)] {
        for policy in [PrefetchPolicy::aggressive(), PrefetchPolicy::none()] {
            for b in [npb::Benchmark::Bt, npb::Benchmark::Cg, npb::Benchmark::Is] {
                let wl = npb::build(b, &policy, cfg.mem_bytes);
                // execute_plain panics if verification fails.
                let (_m, run) = execute_plain(&*wl, &cfg, Team::new(threads));
                assert!(run.cycles > 0, "{} on {}", b.name(), cfg.name);
            }
        }
    }
}

/// The whole simulation (and therefore every experiment) is deterministic:
/// two identical runs produce identical cycle counts and event totals.
#[test]
fn simulation_is_deterministic() {
    let cfg = MachineConfig::smp4();
    let run = || {
        let d = Daxpy::build(
            DaxpyParams::new(64 * 1024, 6),
            &PrefetchPolicy::aggressive(),
            cfg.mem_bytes,
        );
        let (m, r) = execute_plain(&d, &cfg, Team::new(4));
        (
            r.cycles,
            m.total_stats().get(Event::BusMemory),
            m.total_stats().get(Event::L3Miss),
        )
    };
    assert_eq!(run(), run());
}

/// COBRA runs are deterministic too, despite real host threads: the
/// synchronous tick handshake serializes all cross-thread effects.
#[test]
fn cobra_runs_are_deterministic() {
    let cfg = MachineConfig::smp4();
    let run = || {
        let wl = Daxpy::build(
            DaxpyParams::new(128 * 1024, 24),
            &PrefetchPolicy::aggressive(),
            cfg.mem_bytes,
        );
        let mut m = Machine::new(cfg.clone(), wl.image().clone());
        wl.init(&mut m.shared.mem);
        let mut cobra = Cobra::builder().attach(&mut m);
        let rt = OmpRuntime {
            quantum: 20_000,
            ..OmpRuntime::default()
        };
        let r = wl.run(&mut m, Team::new(4), &rt, &mut cobra);
        let report = cobra.detach(&mut m);
        (r.cycles, report.applied.len(), report.samples_forwarded)
    };
    assert_eq!(run(), run());
}

/// Coherent misses cost more on the cc-NUMA machine than on the SMP for
/// the same sharing-heavy workload — the structural reason the paper's
/// Altix speedups dwarf the SMP ones.
#[test]
fn numa_pays_more_for_the_same_sharing() {
    let run = |cfg: &MachineConfig, threads: usize| {
        let d = Daxpy::build(
            DaxpyParams::new(128 * 1024, 12),
            &PrefetchPolicy::aggressive(),
            cfg.mem_bytes,
        );
        let (m, r) = execute_plain(&d, cfg, Team::new(threads));
        let t = m.total_stats();
        // Cycles per coherent event proxies the per-miss penalty.
        r.cycles as f64 / t.coherent_events().max(1) as f64
    };
    let smp = run(&MachineConfig::smp4(), 4);
    let altix = run(&MachineConfig::altix8(), 4);
    assert!(
        altix > smp,
        "per-coherent-event cost must be higher on NUMA: altix {altix:.1} vs smp {smp:.1}"
    );
}

/// A COBRA deployment on one machine leaves the workload's numerics exactly
/// equal to the unoptimized run (bit-for-bit).
#[test]
fn patching_preserves_numerics_bit_for_bit() {
    let cfg = MachineConfig::smp4();
    let params = DaxpyParams::new(128 * 1024, 24);

    let wl = Daxpy::build(params, &PrefetchPolicy::aggressive(), cfg.mem_bytes);
    let (m_base, _) = execute_plain(&wl, &cfg, Team::new(4));

    let wl2 = Daxpy::build(params, &PrefetchPolicy::aggressive(), cfg.mem_bytes);
    let mut m = Machine::new(cfg.clone(), wl2.image().clone());
    wl2.init(&mut m.shared.mem);
    let mut cobra = Cobra::builder()
        .strategy(Strategy::NoPrefetch)
        .attach(&mut m);
    let rt = OmpRuntime {
        quantum: 20_000,
        ..OmpRuntime::default()
    };
    wl2.run(&mut m, Team::new(4), &rt, &mut cobra);
    let report = cobra.detach(&mut m);
    assert!(
        !report.applied.is_empty(),
        "deployment expected: {}",
        report.summary()
    );

    let n = params.n();
    let base = m_base.shared.mem.read_f64_slice(wl.y_addr(), n);
    let patched = m.shared.mem.read_f64_slice(wl2.y_addr(), n);
    assert_eq!(
        base, patched,
        "prefetch rewriting must never change results"
    );
}

/// EP and IS show (almost) no coherent misses — the reason the paper
/// excludes them from Figures 5-7.
#[test]
fn ep_and_is_are_coherence_quiet() {
    let cfg = MachineConfig::smp4();
    for (b, quiet_limit) in [(npb::Benchmark::Ep, 30u64), (npb::Benchmark::Is, 2000u64)] {
        let wl = npb::build(b, &PrefetchPolicy::aggressive(), cfg.mem_bytes);
        let (m, _) = execute_plain(&*wl, &cfg, Team::new(4));
        let hitm = m.total_stats().get(Event::BusRdHitm);
        assert!(
            hitm <= quiet_limit,
            "{}: {} HITMs, expected a coherence-quiet benchmark",
            b.name(),
            hitm
        );
    }
}
